package hafnium

import (
	"testing"

	"khsim/internal/gic"
	"khsim/internal/sim"
)

// TestMultipleSecondariesRunConcurrently drives four single-VCPU VMs on
// four cores at once and checks they all finish with intact accounting.
func TestMultipleSecondariesRunConcurrently(t *testing.T) {
	manifest := `
[vm primary]
class = primary
vcpus = 4
memory_mb = 128
`
	guests := map[string]GuestOS{}
	var works []*stubGuest
	for _, name := range []string{"a", "b", "c", "d"} {
		manifest += "\n[vm " + name + "]\nclass = secondary\nvcpus = 1\nmemory_mb = 64\n"
		g := &stubGuest{workChunk: sim.FromMicros(200), chunks: 5}
		works = append(works, g)
		guests[name] = g
	}
	h, p := buildTestSystem(t, manifest, guests)
	node := h.Node()
	for i, name := range []string{"a", "b", "c", "d"} {
		vm, _ := h.VMByName(name)
		if err := h.RunVCPU(node.Cores[i], vm.VCPU(0)); err != nil {
			t.Fatal(err)
		}
	}
	node.Engine.Run(sim.Time(sim.FromSeconds(0.05)))
	for i, g := range works {
		if g.completed != 5 {
			t.Fatalf("vm %d completed %d/5", i, g.completed)
		}
	}
	if len(p.exits) != 4 {
		t.Fatalf("exits = %v", p.exits)
	}
	// Each guest ran on its own core with no cross-talk: four runs total.
	if h.Stats().Runs != 4 {
		t.Fatalf("runs = %d", h.Stats().Runs)
	}
}

func TestSelectiveRoutingFallsBackWhenSuperNotResident(t *testing.T) {
	manifest := `
routing = selective

[vm primary]
class = primary
vcpus = 4
memory_mb = 128

[vm login]
class = super-secondary
vcpus = 1
memory_mb = 64
`
	login := &stubGuest{workChunk: sim.FromMicros(1), chunks: 1, handlerCost: sim.FromMicros(1)}
	h, p := buildTestSystem(t, manifest, map[string]GuestOS{"login": login})
	p.runOnReady = true
	node := h.Node()
	// Let the login VM boot and block.
	h.RunVCPU(node.Cores[1], h.Super().VCPU(0))
	node.Engine.Run(sim.Time(sim.FromSeconds(0.01)))
	if h.Resident(1) != nil {
		t.Fatal("login still resident")
	}
	// A device SPI routed to core 1 — the super is NOT resident, so the
	// interrupt takes the primary path and the primary can forward it.
	const nic = 41
	node.GIC.Enable(nic)
	node.GIC.Route(nic, 1)
	node.GIC.RaiseSPI(nic)
	node.Engine.Run(node.Now().Add(sim.FromSeconds(0.01)))
	found := false
	for _, irq := range p.irqs {
		if irq == nic {
			found = true
		}
	}
	if !found {
		t.Fatalf("primary never saw the fallback SPI: %v", p.irqs)
	}
	// Forward it; the pending virq is delivered when the VCPU next runs
	// (the stub primary does not auto-schedule ready VCPUs).
	if err := h.InjectDeviceIRQ(SuperSecondaryID, nic); err != nil {
		t.Fatal(err)
	}
	if len(p.readies) == 0 {
		t.Fatal("VCPUReady not signalled for the forwarded IRQ")
	}
	if err := h.RunVCPU(node.Cores[1], h.Super().VCPU(0)); err != nil {
		t.Fatal(err)
	}
	node.Engine.Run(node.Now().Add(sim.FromSeconds(0.05)))
	if len(login.virqs) != 1 || login.virqs[0] != nic {
		t.Fatalf("login virqs = %v", login.virqs)
	}
}

func TestRestartRequiresStopped(t *testing.T) {
	g := &stubGuest{workChunk: sim.FromMicros(5), chunks: 1}
	h, _ := buildTestSystem(t, basicManifest, map[string]GuestOS{"job": g})
	job, _ := h.VMByName("job")
	if err := h.RestartVM(job.ID()); err == nil {
		t.Fatal("restart of running VM accepted")
	}
	if err := h.RestartVM(VMID(99)); err == nil {
		t.Fatal("restart of phantom accepted")
	}
	// An aborted VM cannot be restarted either (needs a fresh image, the
	// §VII launch path).
	h.AttachGuest(job.ID(), &abortingGuest{})
	h.RunVCPU(h.Node().Cores[0], job.VCPU(0))
	h.Node().Engine.RunAll()
	if job.State() != VMAborted {
		t.Fatalf("state = %v", job.State())
	}
	if err := h.RestartVM(job.ID()); err == nil {
		t.Fatal("restart of aborted VM accepted")
	}
}

func TestStopVMWhileDescheduled(t *testing.T) {
	g := &stubGuest{workChunk: sim.FromMicros(5), chunks: 1}
	h, _ := buildTestSystem(t, basicManifest, map[string]GuestOS{"job": g})
	job, _ := h.VMByName("job")
	vc := job.VCPU(0)
	// Never run: the VCPU is runnable but not resident.
	if err := h.StopVM(job.ID()); err != nil {
		t.Fatal(err)
	}
	if vc.State() != VCPUStopped {
		t.Fatalf("state = %v", vc.State())
	}
	if job.State() != VMStopped {
		t.Fatalf("vm state = %v", job.State())
	}
}

func TestVTimerCancelWhileDescheduled(t *testing.T) {
	g := &stubGuest{workChunk: sim.FromMicros(50), chunks: 1, armTimer: sim.FromMicros(500)}
	h, p := buildTestSystem(t, basicManifest, map[string]GuestOS{"job": g})
	node := h.Node()
	job, _ := h.VMByName("job")
	vc := job.VCPU(0)
	h.RunVCPU(node.Cores[0], vc)
	node.Engine.Run(sim.Time(sim.FromMicros(200))) // guest blocked, timer parked
	if !vc.VTimerArmed() {
		t.Fatal("vtimer not armed while parked")
	}
	vc.CancelVTimer()
	node.Engine.RunAll()
	if len(p.readies) != 0 {
		t.Fatal("cancelled parked vtimer still fired")
	}
}

func TestAccessorsAndStrings(t *testing.T) {
	g := &stubGuest{workChunk: 1, chunks: 1}
	h, _ := buildTestSystem(t, basicManifest, map[string]GuestOS{"job": g})
	job, _ := h.VMByName("job")
	if job.Name() != "job" || job.Spec().MemMB != 128 || job.VCPUs() != 1 {
		t.Fatal("VM accessors wrong")
	}
	if job.VCPU(-1) != nil || job.VCPU(5) != nil {
		t.Fatal("out-of-range VCPU not nil")
	}
	vc := job.VCPU(0)
	if vc.VM() != job || vc.Index() != 0 || vc.String() == "" {
		t.Fatal("VCPU accessors wrong")
	}
	if job.Stage2() == nil {
		t.Fatal("no stage2")
	}
	if h.Manifest() == nil {
		t.Fatal("no manifest")
	}
	for _, s := range []fmt_Stringer{
		Primary, SuperSecondary, Secondary,
		VMConfigured, VMRunning, VMStopped, VMCrashed, VMQuarantined,
		RestartNever, RestartAlways,
		VCPUStopped, VCPURunnable, VCPURunning, VCPUBlocked,
		ExitInterrupted, ExitYield, ExitBlocked, ExitStopped, ExitAborted,
		RouteViaPrimary, RouteSelective, TLBVMIDTagged, TLBFlushAll,
	} {
		if s.String() == "" {
			t.Fatal("empty enum string")
		}
	}
	if ClassOfVIRQ(27) != gic.PPI || ClassOfVIRQ(40) != gic.SPI {
		t.Fatal("ClassOfVIRQ wrong")
	}
	if vc.Runs() != 0 {
		t.Fatal("runs counter wrong")
	}
}

type fmt_Stringer interface{ String() string }

func TestPerVMCPUTimeAccounting(t *testing.T) {
	g := &stubGuest{workChunk: sim.FromMicros(200), chunks: 5}
	h, _ := buildTestSystem(t, basicManifest, map[string]GuestOS{"job": g})
	job, _ := h.VMByName("job")
	vc := job.VCPU(0)
	if h.CPUTime(job.ID()) != 0 {
		t.Fatal("CPU time before any run")
	}
	h.RunVCPU(h.Node().Cores[0], vc)
	h.Node().Engine.RunAll()
	got := h.CPUTime(job.ID())
	// 5 chunks × 200us of work plus entry/exit overheads: slightly above
	// 1ms, well below 1.2ms on a quiet node.
	if got < sim.FromMicros(1000) || got > sim.FromMicros(1200) {
		t.Fatalf("CPU time = %v, want ≈1ms", got)
	}
	if vc.Runs() != 1 {
		t.Fatalf("runs = %d", vc.Runs())
	}
}
