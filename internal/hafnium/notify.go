package hafnium

import "fmt"

// VIRQNotification is the virtual interrupt a notification arrives as
// (mirroring FFA notifications, which are doorbells without payload —
// the payload travels through shared memory).
const VIRQNotification = 9

// Notify pends a doorbell interrupt on the target VM's VCPU 0. Unlike
// mailbox messages it carries no data and never blocks: it exists so two
// VMs connected by a memory grant can signal "the ring moved" cheaply —
// the building block for the secure I/O channels the paper's §VII calls
// the major challenge ahead.
//
// Authorization: the primary may notify anyone; other VMs may notify the
// primary or a VM they share an active memory grant with (shared memory
// is the communication relationship).
func (h *Hypervisor) Notify(from, to VMID) error {
	src, ok := h.vms[from]
	if !ok {
		return ErrBadVM
	}
	dst, ok := h.vms[to]
	if !ok {
		return ErrBadVM
	}
	if from == to {
		return fmt.Errorf("hafnium: self-notification")
	}
	if dst.state != VMRunning {
		return ErrNotRunning
	}
	if src.spec.Class != Primary && to != PrimaryID && !h.connected(from, to) {
		return ErrDenied
	}
	h.stats.Notifications++
	h.hypercall("notify", src)
	if dst.spec.Class == Primary {
		return h.node.GIC.SendSGI(0, VIRQNotification)
	}
	h.pendToVM(dst, VIRQNotification)
	return nil
}

// connected reports whether an active grant links the two VMs.
func (h *Hypervisor) connected(a, b VMID) bool {
	for _, r := range h.shares {
		if !r.active {
			continue
		}
		if (r.From == a && r.To == b) || (r.From == b && r.To == a) {
			return true
		}
	}
	return false
}

// NotifyFromVCPU is the guest-side hypercall wrapper.
func (vc *VCPU) Notify(to VMID) error {
	return vc.vm.hyp.Notify(vc.vm.id, to)
}
