package hafnium

import (
	"testing"

	"khsim/internal/sim"
)

// recycleManifest: one secondary with a warm boot-time snapshot and a
// bounded working set, one without either.
const recycleManifest = `
[vm primary]
class = primary
vcpus = 4
memory_mb = 128

[vm warm]
class = secondary
vcpus = 1
memory_mb = 8
working_set_pages = 64
restart_policy = restart
restart_from_snapshot = true

[vm cold]
class = secondary
vcpus = 1
memory_mb = 8
`

// buildRecycleSystem boots the manifest above with parked stub guests
// and stops both secondaries so they are recyclable.
func buildRecycleSystem(t *testing.T) (*Hypervisor, *VM, *VM) {
	t.Helper()
	h, _ := buildTestSystem(t, recycleManifest, map[string]GuestOS{
		"warm": &stubGuest{workChunk: sim.FromMicros(10), chunks: 1},
		"cold": &stubGuest{workChunk: sim.FromMicros(10), chunks: 1},
	})
	warm, _ := h.VMByName("warm")
	cold, _ := h.VMByName("cold")
	for _, vm := range []*VM{warm, cold} {
		if err := h.StopVM(vm.ID()); err != nil {
			t.Fatalf("StopVM(%s): %v", vm.spec.Name, err)
		}
	}
	return h, warm, cold
}

func TestRecycleWarmUsesSnapshot(t *testing.T) {
	h, warm, _ := buildRecycleSystem(t)
	var events []string
	h.SetLifecycleHook(func(ev LifecycleEvent) { events = append(events, ev.Kind) })

	used, err := h.RecycleVM(warm.ID(), true)
	if err != nil {
		t.Fatalf("RecycleVM: %v", err)
	}
	if !used {
		t.Fatal("warm recycle did not use the snapshot")
	}
	st := h.Stats()
	if st.RecyclesWarm != 1 || st.RecyclesCold != 0 {
		t.Fatalf("recycle counters: warm=%d cold=%d", st.RecyclesWarm, st.RecyclesCold)
	}
	// A warm rewind scrubs only the 64-page working set, not all of RAM.
	if st.ScrubbedPages != 64 {
		t.Fatalf("scrubbed %d pages, want the 64-page working set", st.ScrubbedPages)
	}
	if len(events) != 1 || events[0] != "recycle-warm" {
		t.Fatalf("lifecycle events = %v", events)
	}
	if warm.State() != VMStopped {
		t.Fatalf("recycled VM is %v, want stopped for the caller's RestartVM", warm.State())
	}
}

func TestRecycleWarmFallsBackWithoutSnapshot(t *testing.T) {
	h, _, cold := buildRecycleSystem(t)
	// The caller may ask for warm, but this VM never took a boot-time
	// snapshot (no restart_from_snapshot) — the recycle silently degrades
	// to the cold rebuild and reports it.
	used, err := h.RecycleVM(cold.ID(), true)
	if err != nil {
		t.Fatalf("RecycleVM: %v", err)
	}
	if used {
		t.Fatal("recycle claims a warm path the VM cannot have")
	}
	st := h.Stats()
	if st.RecyclesCold != 1 || st.RecyclesWarm != 0 {
		t.Fatalf("recycle counters: warm=%d cold=%d", st.RecyclesWarm, st.RecyclesCold)
	}
	// Cold scrubs the full 8MB image.
	if want := uint64(8 << 20 >> 12); st.ScrubbedPages != want {
		t.Fatalf("scrubbed %d pages, want all %d", st.ScrubbedPages, want)
	}
}

func TestRecycleForcedColdDespiteSnapshot(t *testing.T) {
	h, warm, _ := buildRecycleSystem(t)
	used, err := h.RecycleVM(warm.ID(), false)
	if err != nil {
		t.Fatalf("RecycleVM: %v", err)
	}
	if used || h.Stats().RecyclesCold != 1 {
		t.Fatalf("forced cold recycle went warm (used=%v stats=%+v)", used, h.Stats())
	}
}

func TestPrepareCostWarmBeatsCold(t *testing.T) {
	h, warm, cold := buildRecycleSystem(t)
	w, err := h.PrepareCost(warm.ID(), true)
	if err != nil {
		t.Fatalf("PrepareCost(warm): %v", err)
	}
	c, err := h.PrepareCost(warm.ID(), false)
	if err != nil {
		t.Fatalf("PrepareCost(cold): %v", err)
	}
	if w >= c {
		t.Fatalf("warm prepare %v not cheaper than cold %v", w, c)
	}
	// A VM without a snapshot quotes the cold price even when asked warm.
	cw, err := h.PrepareCost(cold.ID(), true)
	if err != nil {
		t.Fatalf("PrepareCost(cold VM): %v", err)
	}
	cc, _ := h.PrepareCost(cold.ID(), false)
	if cw != cc {
		t.Fatalf("snapshot-less VM quoted a warm price: %v vs %v", cw, cc)
	}
}

func TestRecycleStateGuards(t *testing.T) {
	h, p := buildTestSystem(t, recycleManifest, map[string]GuestOS{
		"warm": &stubGuest{workChunk: sim.FromMicros(10), chunks: 1},
		"cold": &stubGuest{workChunk: sim.FromMicros(10), chunks: 1},
	})
	_ = p
	warm, _ := h.VMByName("warm")
	// Running VM: refused.
	if _, err := h.RecycleVM(warm.ID(), true); err == nil {
		t.Fatal("recycled a running VM")
	}
	// Primary: refused even when stopped-looking IDs are probed.
	if _, err := h.RecycleVM(PrimaryID, true); err == nil {
		t.Fatal("recycled the primary")
	}
	// Unknown VM: refused.
	if _, err := h.RecycleVM(VMID(99), true); err != ErrBadVM {
		t.Fatalf("bogus VMID: %v", err)
	}
}

// TestRecycleThenRestartBootsFresh drives the full reuse loop: run, stop,
// recycle, restart — the guest boots again in the pristine environment
// with no stale mailbox or pending interrupts.
func TestRecycleThenRestartBootsFresh(t *testing.T) {
	g := &stubGuest{workChunk: sim.FromMicros(10), chunks: 1}
	h, p := buildTestSystem(t, recycleManifest, map[string]GuestOS{
		"warm": g,
		"cold": &stubGuest{workChunk: sim.FromMicros(10), chunks: 1},
	})
	p.runOnReady = true
	node := h.Node()
	warm, _ := h.VMByName("warm")
	if err := h.RunVCPU(node.Cores[1], warm.VCPU(0)); err != nil {
		t.Fatal(err)
	}
	node.Engine.Run(sim.Time(sim.FromSeconds(0.01)))
	if g.booted != 1 || g.completed != 1 {
		t.Fatalf("first life: booted=%d completed=%d", g.booted, g.completed)
	}

	if err := h.StopVM(warm.ID()); err != nil {
		t.Fatalf("StopVM: %v", err)
	}
	// Leave a stale doorbell behind; the recycle must clear it.
	warm.VCPU(0).pendVIRQ(VIRQMailbox)
	if _, err := h.RecycleVM(warm.ID(), true); err != nil {
		t.Fatalf("RecycleVM: %v", err)
	}
	if got := warm.VCPU(0).pending; len(got) != 0 {
		t.Fatalf("stale virqs survived the recycle: %v", got)
	}
	if err := h.RestartVM(warm.ID()); err != nil {
		t.Fatalf("RestartVM: %v", err)
	}
	if err := h.RunVCPU(node.Cores[1], warm.VCPU(0)); err != nil {
		t.Fatalf("RunVCPU after restart: %v", err)
	}
	node.Engine.Run(node.Now().Add(sim.FromSeconds(0.01)))
	if g.booted != 2 || g.completed != 2 {
		t.Fatalf("second life: booted=%d completed=%d", g.booted, g.completed)
	}
}
