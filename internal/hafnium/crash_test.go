package hafnium

import (
	"testing"

	"khsim/internal/machine"
	"khsim/internal/mem"
	"khsim/internal/mmu"
	"khsim/internal/sim"
)

const twoSecondaryManifest = `
[vm primary]
class = primary
vcpus = 4
memory_mb = 128

[vm victim]
class = secondary
vcpus = 1
memory_mb = 64

[vm peer]
class = secondary
vcpus = 1
memory_mb = 64
`

// TestCrashRevokesGrantsNoDanglingOwners is the mem-share leak check: a
// secondary crashing mid-grant must leave no active shares and no frame
// reachable without ownership — in both directions (it was lender and
// receiver at the moment of death).
func TestCrashRevokesGrantsNoDanglingOwners(t *testing.T) {
	h, _ := buildTestSystem(t, twoSecondaryManifest, map[string]GuestOS{
		"victim": &stubGuest{workChunk: sim.FromMicros(5), chunks: 1},
		"peer":   &stubGuest{workChunk: sim.FromMicros(5), chunks: 1},
	})
	victim, _ := h.VMByName("victim")
	peer, _ := h.VMByName("peer")

	// Victim lends a page out and shares a page out; peer lends a page in.
	if _, _, err := h.ShareMemory(MemLend, victim.ID(), peer.ID(), GuestRAMBase, mem.PageSize, mmu.PermRW); err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.ShareMemory(MemShare, victim.ID(), peer.ID(), GuestRAMBase+mem.PageSize, mem.PageSize, mmu.PermR); err != nil {
		t.Fatal(err)
	}
	inIPA, _, err := h.ShareMemory(MemLend, peer.ID(), victim.ID(), GuestRAMBase, mem.PageSize, mmu.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.VerifyIsolation(); err != nil {
		t.Fatal(err)
	}

	if err := h.InjectVMFault(victim.ID(), "test crash mid-share"); err != nil {
		t.Fatal(err)
	}
	h.Node().Engine.RunAll()

	if victim.State() != VMCrashed {
		t.Fatalf("victim state = %v", victim.State())
	}
	if got := h.Grants(victim.ID()); len(got) != 0 {
		t.Fatalf("victim still party to %d active grants", len(got))
	}
	// The peer must have lost its windows into victim-owned frames, and
	// must have regained the mapping it lent to the victim.
	if _, err := victim.TranslateIPA(inIPA, mmu.PermR); err == nil {
		t.Fatal("crashed victim still maps the page lent to it")
	}
	if _, err := peer.TranslateIPA(GuestRAMBase, mmu.PermR); err != nil {
		t.Fatalf("peer's lent-out mapping not restored: %v", err)
	}
	// Ownership did not dangle: victim's frames are still victim's.
	pa, perr := peer.TranslateIPA(GuestRAMBase, mmu.PermR)
	if perr != nil {
		t.Fatal(perr)
	}
	if h.FrameOwner(pa) != peer.ID() {
		t.Fatalf("peer frame owned by VM %d", h.FrameOwner(pa))
	}
	if err := h.VerifyIsolation(); err != nil {
		t.Fatalf("isolation violated after crash: %v", err)
	}
	if st := h.Stats(); st.ScrubbedPages == 0 {
		t.Fatal("no pages scrubbed during grant revocation")
	}
	if peer.State() != VMRunning {
		t.Fatalf("peer state = %v, sibling must survive", peer.State())
	}
}

// restartPrimary is a stubPrimary that immediately re-runs VCPUs that
// become ready on an idle core 0 — the minimal scheduler loop a watchdog
// restart needs.
type restartPrimary struct {
	*stubPrimary
}

func (p *restartPrimary) VCPUReady(vc *VCPU) {
	p.stubPrimary.VCPUReady(vc)
	c := p.node.Cores[0]
	if vc.State() == VCPURunnable && p.h.Resident(0) == nil && c.Idle() {
		if err := p.h.RunVCPU(c, vc); err != nil {
			p.t.Errorf("restart run: %v", err)
		}
	}
}

// buildRestartSystem is buildTestSystem with the restart-capable primary.
func buildRestartSystem(t *testing.T, manifest string, guests map[string]GuestOS) (*Hypervisor, *restartPrimary) {
	t.Helper()
	m, err := ParseManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	node := machine.MustNew(machine.PineA64Config(42))
	h, err := New(node, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := &restartPrimary{&stubPrimary{t: t, h: h, node: node, handlerCost: sim.FromMicros(5), evict: 16}}
	h.AttachPrimary(p)
	for name, g := range guests {
		vm, ok := h.VMByName(name)
		if !ok {
			t.Fatalf("no VM %q", name)
		}
		if err := h.AttachGuest(vm.ID(), g); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	return h, p
}

const watchdogManifest = `
[vm primary]
class = primary
vcpus = 4
memory_mb = 128

[vm job]
class = secondary
vcpus = 1
memory_mb = 64
restart_policy = restart
max_restarts = 2
quarantine = true
restart_backoff_us = 100
`

// TestWatchdogRestartBudgetAndQuarantine drives a guest that panics on
// every boot through the full policy: two restarts, then quarantine.
func TestWatchdogRestartBudgetAndQuarantine(t *testing.T) {
	g := &abortingGuest{}
	h, p := buildRestartSystem(t, watchdogManifest, map[string]GuestOS{"job": g})
	job, _ := h.VMByName("job")
	if err := h.RunVCPU(h.Node().Cores[0], job.VCPU(0)); err != nil {
		t.Fatal(err)
	}
	h.Node().Engine.RunAll()

	st := h.Stats()
	if st.Aborts != 3 {
		t.Fatalf("Aborts = %d, want 3 (initial + 2 restarted boots)", st.Aborts)
	}
	if st.Restarts != 2 {
		t.Fatalf("Restarts = %d, want 2", st.Restarts)
	}
	if st.Quarantines != 1 {
		t.Fatalf("Quarantines = %d, want 1", st.Quarantines)
	}
	if job.State() != VMQuarantined {
		t.Fatalf("state = %v, want quarantined", job.State())
	}
	if job.Restarts() != 2 {
		t.Fatalf("vm restarts = %d", job.Restarts())
	}
	if job.CrashReason() == "" {
		t.Fatal("no crash reason recorded")
	}
	// Each crash produced an aborted exit back to the primary.
	aborted := 0
	for _, r := range p.exits {
		if r == ExitAborted {
			aborted++
		}
	}
	if aborted != 3 {
		t.Fatalf("aborted exits = %d, want 3 (%v)", aborted, p.exits)
	}
	// Restart scrubs the whole RAM image each time.
	wantScrub := uint64(2) * uint64(job.Spec().MemMB) << 20 / mem.PageSize
	if st.ScrubbedPages < wantScrub {
		t.Fatalf("ScrubbedPages = %d, want >= %d", st.ScrubbedPages, wantScrub)
	}
}

// recoveringGuest aborts on its first boot only, then runs clean.
type recoveringGuest struct {
	stubGuest
	boots int
}

func (g *recoveringGuest) Boot(vc *VCPU) {
	g.boots++
	if g.boots == 1 {
		vc.Exec("bad", sim.FromMicros(5), func() { vc.Abort() })
		return
	}
	g.stubGuest.Boot(vc)
}

// TestWatchdogRecoversTransientCrash: one crash, one restart, then the
// guest completes its work normally and the VM stays in service.
func TestWatchdogRecoversTransientCrash(t *testing.T) {
	g := &recoveringGuest{stubGuest: stubGuest{workChunk: sim.FromMicros(10), chunks: 3}}
	h, _ := buildRestartSystem(t, watchdogManifest, map[string]GuestOS{"job": g})
	job, _ := h.VMByName("job")
	if err := h.RunVCPU(h.Node().Cores[0], job.VCPU(0)); err != nil {
		t.Fatal(err)
	}
	h.Node().Engine.RunAll()
	if job.State() != VMRunning {
		t.Fatalf("state = %v, want running after recovery", job.State())
	}
	if g.boots != 2 {
		t.Fatalf("boots = %d, want 2", g.boots)
	}
	if g.completed != 3 {
		t.Fatalf("completed chunks = %d, want 3", g.completed)
	}
	st := h.Stats()
	if st.Aborts != 1 || st.Restarts != 1 || st.Quarantines != 0 {
		t.Fatalf("stats = aborts %d restarts %d quarantines %d", st.Aborts, st.Restarts, st.Quarantines)
	}
}

const quarantineNowManifest = `
[vm primary]
class = primary
vcpus = 4
memory_mb = 128

[vm job]
class = secondary
vcpus = 1
memory_mb = 64
quarantine = true
`

// TestQuarantineWithoutRestartPolicy: quarantine = true with the default
// restart_policy sends a crashed VM straight to quarantine.
func TestQuarantineWithoutRestartPolicy(t *testing.T) {
	h, _ := buildTestSystem(t, quarantineNowManifest, map[string]GuestOS{"job": &abortingGuest{}})
	job, _ := h.VMByName("job")
	h.RunVCPU(h.Node().Cores[0], job.VCPU(0))
	h.Node().Engine.RunAll()
	if job.State() != VMQuarantined {
		t.Fatalf("state = %v, want quarantined", job.State())
	}
	st := h.Stats()
	if st.Aborts != 1 || st.Quarantines != 1 || st.Restarts != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// yieldInHandlerGuest misbehaves by yielding from inside an interrupt
// handler while its main activity is still suspended.
type yieldInHandlerGuest struct {
	booted int
}

func (g *yieldInHandlerGuest) Boot(vc *VCPU) {
	g.booted++
	vc.ArmVTimerAfter(sim.FromMicros(20))
	vc.Run(&machine.Activity{Label: "guest.work", Remaining: sim.FromMicros(500)})
}

func (g *yieldInHandlerGuest) HandleVIRQ(vc *VCPU, virq int) {
	vc.Yield() // illegal: guest work is suspended beneath this handler
}

// badExitGuest reports an exit reason the hypercall ABI does not define.
type badExitGuest struct{}

func (g *badExitGuest) Boot(vc *VCPU) {
	vc.vm.hyp.guestExit(vc, ExitReason(99))
}
func (g *badExitGuest) HandleVIRQ(vc *VCPU, virq int) {}

// TestAbortsCountedOnEveryPath pins Stats.Aborts (and BadHypercalls) to
// each distinct abort path: guest Abort, injected fault, exit with
// suspended work, invalid exit reason, and non-resident hypercall.
func TestAbortsCountedOnEveryPath(t *testing.T) {
	t.Run("guest-abort", func(t *testing.T) {
		h, _ := buildTestSystem(t, basicManifest, map[string]GuestOS{"job": &abortingGuest{}})
		job, _ := h.VMByName("job")
		h.RunVCPU(h.Node().Cores[0], job.VCPU(0))
		h.Node().Engine.RunAll()
		if st := h.Stats(); st.Aborts != 1 {
			t.Fatalf("Aborts = %d", st.Aborts)
		}
	})
	t.Run("injected-fault", func(t *testing.T) {
		g := &stubGuest{workChunk: sim.FromMicros(5), chunks: 1}
		h, _ := buildTestSystem(t, basicManifest, map[string]GuestOS{"job": g})
		job, _ := h.VMByName("job")
		if err := h.InjectVMFault(job.ID(), "test"); err != nil {
			t.Fatal(err)
		}
		if st := h.Stats(); st.Aborts != 1 {
			t.Fatalf("Aborts = %d", st.Aborts)
		}
		// Idempotent: a second fault on a dead VM is refused, not counted.
		if err := h.InjectVMFault(job.ID(), "again"); err != ErrNotRunning {
			t.Fatalf("second fault: %v", err)
		}
		if st := h.Stats(); st.Aborts != 1 {
			t.Fatalf("Aborts after refused fault = %d", st.Aborts)
		}
	})
	t.Run("exit-with-suspended-work", func(t *testing.T) {
		g := &yieldInHandlerGuest{}
		h, p := buildTestSystem(t, basicManifest, map[string]GuestOS{"job": g})
		job, _ := h.VMByName("job")
		h.RunVCPU(h.Node().Cores[0], job.VCPU(0))
		h.Node().Engine.RunAll()
		if job.State() != VMCrashed {
			t.Fatalf("state = %v", job.State())
		}
		st := h.Stats()
		if st.Aborts != 1 || st.BadHypercalls != 1 {
			t.Fatalf("aborts %d badhypercalls %d", st.Aborts, st.BadHypercalls)
		}
		if len(p.exits) != 1 || p.exits[0] != ExitAborted {
			t.Fatalf("exits = %v", p.exits)
		}
	})
	t.Run("invalid-exit-reason", func(t *testing.T) {
		h, p := buildTestSystem(t, basicManifest, map[string]GuestOS{"job": &badExitGuest{}})
		job, _ := h.VMByName("job")
		h.RunVCPU(h.Node().Cores[0], job.VCPU(0))
		h.Node().Engine.RunAll()
		if job.State() != VMCrashed {
			t.Fatalf("state = %v", job.State())
		}
		st := h.Stats()
		if st.Aborts != 1 || st.BadHypercalls != 1 {
			t.Fatalf("aborts %d badhypercalls %d", st.Aborts, st.BadHypercalls)
		}
		if len(p.exits) != 1 || p.exits[0] != ExitAborted {
			t.Fatalf("exits = %v", p.exits)
		}
	})
	t.Run("non-resident-hypercall", func(t *testing.T) {
		g := &stubGuest{workChunk: sim.FromMicros(5), chunks: 1}
		h, _ := buildTestSystem(t, basicManifest, map[string]GuestOS{"job": g})
		job, _ := h.VMByName("job")
		job.VCPU(0).Exec("rogue", sim.FromMicros(1), nil) // never resident
		if job.State() != VMCrashed {
			t.Fatalf("state = %v", job.State())
		}
		st := h.Stats()
		if st.Aborts != 1 || st.BadHypercalls != 1 {
			t.Fatalf("aborts %d badhypercalls %d", st.Aborts, st.BadHypercalls)
		}
	})
}

// TestCrashedVMDeniedService: every hypercall that would touch a crashed
// VM is refused with a typed error, and siblings keep running.
func TestCrashedVMDeniedService(t *testing.T) {
	peerGuest := &stubGuest{workChunk: sim.FromMicros(20), chunks: 4, exit: ExitYield}
	h, p := buildTestSystem(t, twoSecondaryManifest, map[string]GuestOS{
		"victim": &abortingGuest{},
		"peer":   peerGuest,
	})
	p.rerun = true
	victim, _ := h.VMByName("victim")
	peer, _ := h.VMByName("peer")
	h.RunVCPU(h.Node().Cores[0], victim.VCPU(0))
	h.RunVCPU(h.Node().Cores[1], peer.VCPU(0))
	h.Node().Engine.RunAll()

	if victim.State() != VMCrashed {
		t.Fatalf("victim = %v", victim.State())
	}
	if err := h.RunVCPU(h.Node().Cores[0], victim.VCPU(0)); err != ErrNotRunning {
		t.Fatalf("RunVCPU on crashed VM: %v", err)
	}
	if err := h.StopVM(victim.ID()); err != ErrNotRunning {
		t.Fatalf("StopVM on crashed VM: %v", err)
	}
	if err := h.RestartVM(victim.ID()); err == nil {
		t.Fatal("manual RestartVM of crashed VM accepted")
	}
	if err := h.SendFromPrimary(victim.ID(), []byte("hi")); err != ErrNotRunning {
		t.Fatalf("msgSend to crashed VM: %v", err)
	}
	// The sibling ran to completion, undisturbed.
	if peer.State() != VMRunning {
		t.Fatalf("peer = %v", peer.State())
	}
	if peerGuest.completed != 4 {
		t.Fatalf("peer completed %d chunks", peerGuest.completed)
	}
}

// TestCrashDrainsPendingVirqsAndMailbox: queued interrupts and mailbox
// contents die with the VM and do not resurface after restart.
func TestCrashDrainsPendingVirqsAndMailbox(t *testing.T) {
	g := &stubGuest{workChunk: sim.FromMicros(10), chunks: 1}
	h, _ := buildTestSystem(t, watchdogManifest, map[string]GuestOS{"job": g})
	job, _ := h.VMByName("job")
	vc := job.VCPU(0)
	// Queue state while the VCPU is descheduled, then crash it.
	if err := h.SendFromPrimary(job.ID(), []byte("stale")); err != nil {
		t.Fatal(err)
	}
	if len(vc.PendingVIRQs()) == 0 {
		t.Fatal("mailbox send did not pend a virq")
	}
	if err := h.InjectVMFault(job.ID(), "test"); err != nil {
		t.Fatal(err)
	}
	if len(vc.PendingVIRQs()) != 0 {
		t.Fatalf("pending virqs survived the crash: %v", vc.PendingVIRQs())
	}
	// The watchdog restart scrubs the VM back to service with an empty
	// mailbox and no queued interrupts.
	h.Node().Engine.RunAll()
	if job.State() != VMRunning {
		t.Fatalf("state = %v", job.State())
	}
	if len(vc.PendingVIRQs()) != 0 {
		t.Fatalf("virqs reappeared after restart: %v", vc.PendingVIRQs())
	}
	if _, err := h.msgRecv(job.ID()); err != ErrEmpty {
		t.Fatalf("stale mailbox message survived restart: %v", err)
	}
}
