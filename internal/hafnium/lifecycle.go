package hafnium

// LifecycleEvent reports one VM lifecycle transition the crash/recovery
// machinery performed. The attestation layer subscribes to these to
// append real records — crashes, watchdog restarts, snapshot restores,
// quarantines — to the node's hash-chained ledger, replacing synthetic
// heartbeat proposals.
type LifecycleEvent struct {
	// Kind is the transition: "crash", "restart", "snapshot-restore" (a
	// restart served from the boot-time warm snapshot), "quarantine",
	// one of the live-migration transitions — "migrate-out" (image
	// released here after committing on the destination), "migrate-in"
	// (image admitted and resumed here), "migrate-abort" (transfer failed;
	// the VM rolled back and resumed here) — or one of the serving-pool
	// recycle transitions, "recycle-warm" (stage-2 rewound to the warm
	// copy-on-write snapshot) and "recycle-cold" (full table rebuild).
	Kind string
	// VM is the partition's manifest name.
	VM string
	// Reason is the crash reason the transition stems from.
	Reason string
	// Restarts is the VM's restart count after the transition.
	Restarts int
}

// SetLifecycleHook installs the subscriber. The hook runs synchronously
// inside the transition (deterministic event context); it must not call
// back into the crash machinery. One subscriber; nil uninstalls.
func (h *Hypervisor) SetLifecycleHook(fn func(LifecycleEvent)) { h.onLifecycle = fn }

// lifecycle fires the hook, if any.
func (h *Hypervisor) lifecycle(kind string, vm *VM, reason string) {
	if h.onLifecycle != nil {
		h.onLifecycle(LifecycleEvent{Kind: kind, VM: vm.spec.Name, Reason: reason, Restarts: vm.restarts})
	}
}
