package hafnium

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleManifest = `
# node partition plan
routing = via-primary
tlb = vmid-tagged

[vm kitten]
class = primary
vcpus = 4
memory_mb = 256

[vm login]
class = super-secondary
vcpus = 1
memory_mb = 256

[vm job0]
class = secondary
vcpus = 1
memory_mb = 512
secure = true
working_set_pages = 128
restart_policy = restart
max_restarts = 4
quarantine = true
restart_backoff_us = 250
`

func TestParseManifest(t *testing.T) {
	m, err := ParseManifest(sampleManifest)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.VMs) != 3 {
		t.Fatalf("VMs = %d", len(m.VMs))
	}
	if m.Routing != RouteViaPrimary || m.TLB != TLBVMIDTagged {
		t.Fatal("globals wrong")
	}
	k := m.VMs[0]
	if k.Name != "kitten" || k.Class != Primary || k.VCPUs != 4 || k.MemMB != 256 {
		t.Fatalf("kitten spec = %+v", k)
	}
	j := m.VMs[2]
	if !j.Secure || j.WorkingSetPages != 128 || j.Class != Secondary {
		t.Fatalf("job0 spec = %+v", j)
	}
	if j.Restart != RestartAlways || j.MaxRestarts != 4 || !j.Quarantine || j.RestartBackoffUS != 250 {
		t.Fatalf("job0 crash policy = %+v", j)
	}
}

func TestParseManifestSelective(t *testing.T) {
	m, err := ParseManifest("routing = selective\ntlb = flush-all\n[vm p]\nclass = primary\nvcpus=1\nmemory_mb=64\n")
	if err != nil {
		t.Fatal(err)
	}
	if m.Routing != RouteSelective || m.TLB != TLBFlushAll {
		t.Fatal("globals wrong")
	}
}

func TestParseManifestErrors(t *testing.T) {
	cases := []string{
		"bogus line without equals\n",
		"routing = sideways\n",
		"tlb = off\n",
		"unknownkey = 1\n",
		"[vm]\nclass = primary\n",
		"[vm a\nclass = primary\n",
		"[vm a]\nclass = emperor\n",
		"[vm a]\nvcpus = many\n",
		"[vm a]\nmemory_mb = lots\n",
		"[vm a]\nsecure = perhaps\n",
		"[vm a]\nworking_set_pages = big\n",
		"[vm a]\nwhatkey = 1\n",
		// structural: no primary
		"[vm a]\nclass = secondary\n",
		// two primaries
		"[vm a]\nclass = primary\n[vm b]\nclass = primary\n",
		// two super-secondaries
		"[vm p]\nclass = primary\n[vm a]\nclass = super-secondary\n[vm b]\nclass = super-secondary\n",
		// duplicate names
		"[vm p]\nclass = primary\n[vm p]\nclass = secondary\n",
		// secure primary
		"[vm p]\nclass = primary\nsecure = true\n",
		// zero vcpus
		"[vm p]\nclass = primary\nvcpus = 0\n",
		// zero memory
		"[vm p]\nclass = primary\nmemory_mb = 0\n",
		// bad restart policy value
		"[vm a]\nrestart_policy = sometimes\n",
		// bad max_restarts value
		"[vm a]\nmax_restarts = few\n",
		// bad quarantine value
		"[vm a]\nquarantine = maybe\n",
		// bad backoff value
		"[vm a]\nrestart_backoff_us = slow\n",
		// negative restart budget
		"[vm p]\nclass = primary\n[vm a]\nclass = secondary\nrestart_policy = restart\nmax_restarts = -1\n",
		// negative backoff
		"[vm p]\nclass = primary\n[vm a]\nclass = secondary\nrestart_policy = restart\nrestart_backoff_us = -5\n",
		// restart limits without a restart policy
		"[vm p]\nclass = primary\n[vm a]\nclass = secondary\nmax_restarts = 3\n",
		"[vm p]\nclass = primary\n[vm a]\nclass = secondary\nrestart_backoff_us = 50\n",
		// crash policy on the primary
		"[vm p]\nclass = primary\nrestart_policy = restart\n[vm a]\nclass = secondary\n",
		"[vm p]\nclass = primary\nquarantine = true\n[vm a]\nclass = secondary\n",
	}
	for i, c := range cases {
		if _, err := ParseManifest(c); err == nil {
			t.Errorf("case %d accepted:\n%s", i, c)
		}
	}
}

func TestManifestFormatRoundTrip(t *testing.T) {
	m, err := ParseManifest(sampleManifest)
	if err != nil {
		t.Fatal(err)
	}
	text := m.Format()
	m2, err := ParseManifest(text)
	if err != nil {
		t.Fatalf("formatted manifest does not reparse: %v\n%s", err, text)
	}
	if len(m2.VMs) != len(m.VMs) || m2.Routing != m.Routing || m2.TLB != m.TLB {
		t.Fatal("round trip lost data")
	}
	if !strings.Contains(text, "secure = true") {
		t.Fatal("secure flag lost in format")
	}
	for i := range m.VMs {
		a, b := m.VMs[i], m2.VMs[i]
		if a.Restart != b.Restart || a.MaxRestarts != b.MaxRestarts ||
			a.Quarantine != b.Quarantine || a.RestartBackoffUS != b.RestartBackoffUS {
			t.Fatalf("crash policy lost in round trip: %+v vs %+v", a, b)
		}
	}
	if !strings.Contains(text, "restart_policy = restart") {
		t.Fatal("restart policy lost in format")
	}
}

// TestShippedManifestsParse keeps the manifests/ directory in sync with
// the parser.
func TestShippedManifestsParse(t *testing.T) {
	files, err := filepath.Glob("../../manifests/*.manifest")
	if err != nil || len(files) == 0 {
		t.Fatalf("no shipped manifests found: %v", err)
	}
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(b), "[cluster]") || strings.Contains(string(b), "[serve]") {
			// Cluster and serving manifests embed a VM plan but carry
			// extra sections; internal/cluster's and internal/serve's
			// parsers (and their tests) own those.
			continue
		}
		m, err := ParseManifest(string(b))
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if len(m.VMs) < 2 {
			t.Errorf("%s: only %d VMs", f, len(m.VMs))
		}
	}
}
