package hafnium

import (
	"testing"
	"testing/quick"

	"khsim/internal/machine"
	"khsim/internal/mem"
	"khsim/internal/mmu"
	"khsim/internal/sim"
	"khsim/internal/tz"
)

const shareManifest = `
[vm primary]
class = primary
vcpus = 4
memory_mb = 64

[vm a]
class = secondary
vcpus = 1
memory_mb = 64

[vm b]
class = secondary
vcpus = 1
memory_mb = 64
`

func shareSystem(t *testing.T) (*Hypervisor, *VM, *VM) {
	t.Helper()
	ga := &stubGuest{workChunk: sim.FromMicros(1), chunks: 1}
	gb := &stubGuest{workChunk: sim.FromMicros(1), chunks: 1}
	h, _ := buildTestSystem(t, shareManifest, map[string]GuestOS{"a": ga, "b": gb})
	a, _ := h.VMByName("a")
	b, _ := h.VMByName("b")
	return h, a, b
}

func TestShareGrantsReceiverAccess(t *testing.T) {
	h, a, b := shareSystem(t)
	base, _ := a.RAM()
	toIPA, id, err := h.ShareMemory(MemShare, a.ID(), b.ID(), base, 4*mem.PageSize, mmu.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	// Both sides now translate to the same frames.
	paA, err := a.TranslateIPA(base, mmu.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	paB, err := b.TranslateIPA(toIPA, mmu.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if paA != paB {
		t.Fatalf("share not aliased: %#x vs %#x", uint64(paA), uint64(paB))
	}
	if err := h.VerifyIsolation(); err != nil {
		t.Fatal(err)
	}
	// Receiver cannot execute if only RW granted.
	if _, err := b.TranslateIPA(toIPA, mmu.PermX); err == nil {
		t.Fatal("execute through RW grant allowed")
	}
	if len(h.Grants(a.ID())) != 1 || len(h.Grants(b.ID())) != 1 {
		t.Fatal("grants not visible")
	}
	// Reclaim removes receiver access.
	if err := h.ReclaimMemory(a.ID(), id); err != nil {
		t.Fatal(err)
	}
	if _, err := b.TranslateIPA(toIPA, mmu.PermR); err == nil {
		t.Fatal("receiver kept access after reclaim")
	}
	if err := h.VerifyIsolation(); err != nil {
		t.Fatal(err)
	}
}

func TestLendRevokesOwnerAccess(t *testing.T) {
	h, a, b := shareSystem(t)
	base, _ := a.RAM()
	toIPA, id, err := h.ShareMemory(MemLend, a.ID(), b.ID(), base+mem.PageSize, 2*mem.PageSize, mmu.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.TranslateIPA(base+mem.PageSize, mmu.PermR); err == nil {
		t.Fatal("lender kept access to lent pages")
	}
	if _, err := b.TranslateIPA(toIPA, mmu.PermW); err != nil {
		t.Fatal(err)
	}
	if err := h.VerifyIsolation(); err != nil {
		t.Fatal(err)
	}
	// Reclaim restores the owner.
	if err := h.ReclaimMemory(a.ID(), id); err != nil {
		t.Fatal(err)
	}
	if _, err := a.TranslateIPA(base+mem.PageSize, mmu.PermRW); err != nil {
		t.Fatal("owner access not restored after reclaim")
	}
	if err := h.VerifyIsolation(); err != nil {
		t.Fatal(err)
	}
}

func TestDonateTransfersOwnership(t *testing.T) {
	h, a, b := shareSystem(t)
	base, _ := a.RAM()
	paBefore, _ := a.TranslateIPA(base, mmu.PermR)
	toIPA, _, err := h.ShareMemory(MemDonate, a.ID(), b.ID(), base, mem.PageSize, mmu.PermRWX)
	if err != nil {
		t.Fatal(err)
	}
	if h.FrameOwner(paBefore) != b.ID() {
		t.Fatal("ownership not transferred")
	}
	if _, err := a.TranslateIPA(base, mmu.PermR); err == nil {
		t.Fatal("donor kept access")
	}
	if pa, err := b.TranslateIPA(toIPA, mmu.PermRWX); err != nil || pa != paBefore {
		t.Fatalf("receiver access: %v %#x", err, uint64(pa))
	}
	if err := h.VerifyIsolation(); err != nil {
		t.Fatal(err)
	}
	// Donation is permanent: no reclaim.
	for id := range h.shares {
		if err := h.ReclaimMemory(a.ID(), id); err == nil {
			t.Fatal("reclaim of donation accepted")
		}
	}
	// New owner can re-grant it.
	if _, _, err := h.ShareMemory(MemShare, b.ID(), a.ID(), toIPA, mem.PageSize, mmu.PermR); err != nil {
		t.Fatal(err)
	}
	if err := h.VerifyIsolation(); err != nil {
		t.Fatal(err)
	}
}

func TestShareValidation(t *testing.T) {
	h, a, b := shareSystem(t)
	base, size := a.RAM()
	cases := []struct {
		name string
		fn   func() error
	}{
		{"self", func() error {
			_, _, err := h.ShareMemory(MemShare, a.ID(), a.ID(), base, mem.PageSize, mmu.PermR)
			return err
		}},
		{"bad sender", func() error {
			_, _, err := h.ShareMemory(MemShare, VMID(99), b.ID(), base, mem.PageSize, mmu.PermR)
			return err
		}},
		{"bad receiver", func() error {
			_, _, err := h.ShareMemory(MemShare, a.ID(), VMID(99), base, mem.PageSize, mmu.PermR)
			return err
		}},
		{"unaligned", func() error {
			_, _, err := h.ShareMemory(MemShare, a.ID(), b.ID(), base+1, mem.PageSize, mmu.PermR)
			return err
		}},
		{"zero size", func() error {
			_, _, err := h.ShareMemory(MemShare, a.ID(), b.ID(), base, 0, mmu.PermR)
			return err
		}},
		{"no perms", func() error {
			_, _, err := h.ShareMemory(MemShare, a.ID(), b.ID(), base, mem.PageSize, 0)
			return err
		}},
		{"unmapped", func() error {
			_, _, err := h.ShareMemory(MemShare, a.ID(), b.ID(), base+size, mem.PageSize, mmu.PermR)
			return err
		}},
		{"not owner", func() error {
			// a tries to share b's memory region (a has no mapping for it,
			// so this also exercises the stage-2 walk failure).
			_, _, err := h.ShareMemory(MemShare, a.ID(), b.ID(), base+size+mem.PageSize, mem.PageSize, mmu.PermR)
			return err
		}},
	}
	for _, c := range cases {
		if err := c.fn(); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
	// Double grant of the same frames.
	if _, _, err := h.ShareMemory(MemShare, a.ID(), b.ID(), base, mem.PageSize, mmu.PermR); err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.ShareMemory(MemShare, a.ID(), b.ID(), base, mem.PageSize, mmu.PermR); err == nil {
		t.Error("double grant accepted")
	}
	// Reclaim authorization.
	var grantID uint64
	for id := range h.shares {
		grantID = id
	}
	if err := h.ReclaimMemory(b.ID(), grantID); err == nil {
		t.Error("receiver reclaimed a grant")
	}
	if err := h.ReclaimMemory(a.ID(), 9999); err == nil {
		t.Error("phantom reclaim accepted")
	}
}

func TestSecureWorldShareRules(t *testing.T) {
	manifest := `
[vm primary]
class = primary
vcpus = 4
memory_mb = 64

[vm svm]
class = secondary
vcpus = 1
memory_mb = 64
secure = true

[vm nvm]
class = secondary
vcpus = 1
memory_mb = 64
`
	m, err := ParseManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	node := machine.MustNew(machine.PineA64Config(7))
	monitor := tz.NewMonitor(node.Mem, len(node.Cores), false)
	h, err := New(node, m, monitor)
	if err != nil {
		t.Fatal(err)
	}
	p := &stubPrimary{t: t, h: h, node: node, handlerCost: sim.FromMicros(5), evict: 8}
	h.AttachPrimary(p)
	svm, _ := h.VMByName("svm")
	nvm, _ := h.VMByName("nvm")
	h.AttachGuest(svm.ID(), &stubGuest{workChunk: 1, chunks: 1})
	h.AttachGuest(nvm.ID(), &stubGuest{workChunk: 1, chunks: 1})
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	// The monitor froze with the secure carve-out in place.
	if !monitor.Frozen() || len(monitor.SecureRegions()) != 1 {
		t.Fatal("secure partition not configured at boot")
	}
	// The secure VM's frames live in the secure world.
	base, _ := svm.RAM()
	pa, err := svm.TranslateIPA(base, mmu.PermR)
	if err != nil {
		t.Fatal(err)
	}
	if monitor.WorldOf(pa) != tz.Secure {
		t.Fatal("secure VM backed by non-secure frames")
	}
	if monitor.CanAccess(tz.NonSecure, pa, mem.PageSize) {
		t.Fatal("non-secure world can touch secure VM memory")
	}
	// Secure → non-secure sharing is forbidden.
	if _, _, err := h.ShareMemory(MemShare, svm.ID(), nvm.ID(), base, mem.PageSize, mmu.PermR); err == nil {
		t.Fatal("secure→non-secure share accepted")
	}
	// Non-secure → secure sharing is allowed.
	nbase, _ := nvm.RAM()
	if _, _, err := h.ShareMemory(MemShare, nvm.ID(), svm.ID(), nbase, mem.PageSize, mmu.PermR); err != nil {
		t.Fatal(err)
	}
	if err := h.VerifyIsolation(); err != nil {
		t.Fatal(err)
	}
	// Requesting a secure VM without a monitor fails at build time.
	if _, err := New(machine.MustNew(machine.PineA64Config(8)), m, nil); err == nil {
		t.Fatal("secure VM without monitor accepted")
	}
}

// Property: arbitrary interleavings of share/lend/donate/reclaim between
// two VMs never break the isolation invariant, and every operation's
// success/failure leaves the system self-consistent.
func TestQuickShareIsolationInvariant(t *testing.T) {
	type op struct {
		Kind    uint8
		FromA   bool
		PageOff uint8
		Pages   uint8
		Reclaim bool
	}
	f := func(ops []op) bool {
		ga := &stubGuest{workChunk: 1, chunks: 1}
		gb := &stubGuest{workChunk: 1, chunks: 1}
		h, _ := buildTestSystem(t, shareManifest, map[string]GuestOS{"a": ga, "b": gb})
		a, _ := h.VMByName("a")
		b, _ := h.VMByName("b")
		base, _ := a.RAM()
		var grants []struct {
			id uint64
			by VMID
		}
		for _, o := range ops {
			if o.Reclaim && len(grants) > 0 {
				g := grants[0]
				grants = grants[1:]
				h.ReclaimMemory(g.by, g.id)
			} else {
				from, to := a, b
				if !o.FromA {
					from, to = b, a
				}
				kind := ShareKind(o.Kind % 3)
				ipa := base + uint64(o.PageOff%64)*mem.PageSize
				size := (uint64(o.Pages%4) + 1) * mem.PageSize
				if _, id, err := h.ShareMemory(kind, from.ID(), to.ID(), ipa, size, mmu.PermRW); err == nil && kind != MemDonate {
					grants = append(grants, struct {
						id uint64
						by VMID
					}{id, from.ID()})
				}
			}
			if err := h.VerifyIsolation(); err != nil {
				t.Logf("isolation violated: %v", err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
