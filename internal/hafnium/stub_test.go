package hafnium

import (
	"testing"

	"khsim/internal/machine"
	"khsim/internal/sim"
)

// stubPrimary is a controllable PrimaryOS for tests: it records every
// callback and can be told to re-run preempted guests or pull from a run
// queue when idle.
type stubPrimary struct {
	t    *testing.T
	h    *Hypervisor
	node *machine.Node

	handlerCost sim.Duration
	evict       int
	rerun       bool // re-run the preempted VCPU after handling its IRQ
	runOnReady  bool // hand ready VCPUs to idle cores via the queue

	irqs    []int
	exits   []ExitReason
	exited  []*VCPU
	readies []*VCPU
	queue   []*VCPU
}

func (p *stubPrimary) Boot() {}

func (p *stubPrimary) HandleIRQ(c *machine.Core, irq int) {
	p.irqs = append(p.irqs, irq)
	vc := p.h.Preempted(c)
	c.Exec("stub.handler", p.handlerCost, func() {
		if p.rerun && vc != nil && vc.State() == VCPURunnable {
			if err := p.h.RunVCPU(c, vc); err != nil {
				p.t.Errorf("rerun: %v", err)
			}
		}
	})
}

func (p *stubPrimary) VCPUExited(c *machine.Core, vc *VCPU, reason ExitReason) {
	p.exits = append(p.exits, reason)
	p.exited = append(p.exited, vc)
}

func (p *stubPrimary) VCPUReady(vc *VCPU) {
	p.readies = append(p.readies, vc)
	if p.runOnReady {
		p.queue = append(p.queue, vc)
	}
}

func (p *stubPrimary) CoreIdle(c *machine.Core) {
	if len(p.queue) == 0 {
		return
	}
	vc := p.queue[0]
	p.queue = p.queue[1:]
	if err := p.h.RunVCPU(c, vc); err != nil {
		p.t.Errorf("idle run: %v", err)
	}
}

func (p *stubPrimary) EvictionPages() int { return p.evict }

// stubGuest runs a fixed number of work chunks, then exits with the
// configured reason. Virtual IRQs are recorded and cost handlerCost.
type stubGuest struct {
	workChunk   sim.Duration
	chunks      int
	handlerCost sim.Duration
	exit        ExitReason   // ExitYield or ExitBlocked after the chunks
	armTimer    sim.Duration // if nonzero, periodic vtimer

	booted    int
	completed int
	virqs     []int
	preempts  int
	resumes   int
	stolenTot sim.Duration
}

func (g *stubGuest) Boot(vc *VCPU) {
	g.booted++
	if g.armTimer > 0 {
		vc.ArmVTimerAfter(g.armTimer)
	}
	g.runChunks(vc, g.chunks)
}

func (g *stubGuest) runChunks(vc *VCPU, left int) {
	if left == 0 {
		switch g.exit {
		case ExitYield:
			vc.Yield()
		default:
			vc.Block()
		}
		return
	}
	a := &machine.Activity{
		Label:     "guest.work",
		Remaining: g.workChunk,
		OnComplete: func() {
			g.completed++
			g.runChunks(vc, left-1)
		},
		OnPreempt: func(at sim.Time) { g.preempts++ },
		OnResume:  func(at sim.Time, stolen sim.Duration) { g.resumes++; g.stolenTot += stolen },
	}
	vc.Run(a)
}

func (g *stubGuest) HandleVIRQ(vc *VCPU, virq int) {
	g.virqs = append(g.virqs, virq)
	if g.armTimer > 0 && virq == 27 {
		vc.ArmVTimerAfter(g.armTimer)
	}
	vc.Exec("guest.virq", g.handlerCost, nil)
}

// buildTestSystem boots a node with the given manifest text plus stubs.
func buildTestSystem(t *testing.T, manifest string, guests map[string]GuestOS) (*Hypervisor, *stubPrimary) {
	t.Helper()
	m, err := ParseManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	node := machine.MustNew(machine.PineA64Config(42))
	h, err := New(node, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := &stubPrimary{t: t, h: h, node: node, handlerCost: sim.FromMicros(5), evict: 16}
	h.AttachPrimary(p)
	for name, g := range guests {
		vm, ok := h.VMByName(name)
		if !ok {
			t.Fatalf("no VM %q", name)
		}
		if err := h.AttachGuest(vm.ID(), g); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	return h, p
}

const basicManifest = `
[vm primary]
class = primary
vcpus = 4
memory_mb = 128

[vm job]
class = secondary
vcpus = 1
memory_mb = 128
`
