package hafnium

import (
	"fmt"

	"khsim/internal/machine"
	"khsim/internal/mem"
	"khsim/internal/mmu"
	"khsim/internal/sim"
)

// vcpuSnap is one VCPU's snapshot: scheduling state plus the saved
// execution context (suspension-stack frames with their progress
// fields) and the virtual-timer registers.
type vcpuSnap struct {
	state   VCPUState
	core    int
	saved   []*machine.Activity
	acts    []machine.ActivityState
	pending []int
	booted  bool

	vtArmed     bool
	vtDeadline  sim.Time
	vtPendEvent sim.Event

	runs uint64
}

// vmSnap is one VM's snapshot. The stage-2 table and walk cache are
// recorded by pointer *and* by state: crash recovery swaps the table
// object out, so a restore must first repoint the VM at the object the
// snapshot saw, then rewind that object's contents.
type vmSnap struct {
	state        VMState
	stage2       *mmu.Table
	stage2St     sim.State
	s2cache      *mmu.WalkCache
	s2cacheSt    sim.State
	nextShareIPA uint64
	mailbox      *Message
	mmio         []mem.Region
	restarts     int
	watchdog     sim.Event
	crashReason  string
	warmS2       sim.State
	warmShareIPA uint64
	vcpus        []vcpuSnap
}

// hypState is Hypervisor's Snapshot payload.
type hypState struct {
	cur       []*VCPU
	preempted []*VCPU
	lastVMID  []VMID
	enteredAt []sim.Time
	vmCPU     map[VMID]sim.Duration

	owner       map[mem.PA]VMID
	ownerVer    uint64
	shares      map[uint64]*shareRecord
	nextShareID uint64

	nsAlloc sim.State
	sAlloc  sim.State

	booted bool
	stats  Stats

	vms []vmSnap // in h.order
}

// Snapshot captures the whole EL2 world: per-core residency, VM and
// VCPU state machines (saved contexts, pending virqs, virtual timers,
// watchdogs), stage-2 tables (copy-on-write freeze), the frame-owner
// map, memory grants, both allocators and the counters. Hypervisor
// implements sim.Snapshotter and registers itself on the node at build
// time, so node snapshots include it automatically.
func (h *Hypervisor) Snapshot() sim.State {
	s := &hypState{
		cur:         append([]*VCPU(nil), h.cur...),
		preempted:   append([]*VCPU(nil), h.preempted...),
		lastVMID:    append([]VMID(nil), h.lastVMID...),
		enteredAt:   append([]sim.Time(nil), h.enteredAt...),
		vmCPU:       make(map[VMID]sim.Duration, len(h.vmCPU)),
		owner:       make(map[mem.PA]VMID, len(h.owner)),
		ownerVer:    h.ownerVer,
		shares:      make(map[uint64]*shareRecord, len(h.shares)),
		nextShareID: h.nextShareID,
		nsAlloc:     h.nsAlloc.Snapshot(),
		booted:      h.booted,
		stats:       h.stats,
	}
	if h.sAlloc != nil {
		s.sAlloc = h.sAlloc.Snapshot()
	}
	for k, v := range h.vmCPU {
		s.vmCPU[k] = v
	}
	for k, v := range h.owner {
		s.owner[k] = v
	}
	for id, rec := range h.shares {
		cp := *rec // Grant.Pages is append-only after creation; shared
		s.shares[id] = &cp
	}
	for _, id := range h.order {
		vm := h.vms[id]
		vs := vmSnap{
			state:        vm.state,
			stage2:       vm.stage2,
			stage2St:     vm.stage2.Snapshot(),
			s2cache:      vm.s2cache,
			s2cacheSt:    vm.s2cache.Snapshot(),
			nextShareIPA: vm.nextShareIPA,
			mmio:         append([]mem.Region(nil), vm.mmio...),
			restarts:     vm.restarts,
			watchdog:     vm.watchdog,
			crashReason:  vm.crashReason,
			warmS2:       vm.warmS2,
			warmShareIPA: vm.warmShareIPA,
		}
		if vm.mailbox != nil {
			mb := *vm.mailbox
			mb.Payload = append([]byte(nil), vm.mailbox.Payload...)
			vs.mailbox = &mb
		}
		for _, vc := range vm.vcpus {
			cs := vcpuSnap{
				state:       vc.state,
				core:        vc.core,
				saved:       append([]*machine.Activity(nil), vc.saved...),
				pending:     append([]int(nil), vc.pending...),
				booted:      vc.booted,
				vtArmed:     vc.vtArmed,
				vtDeadline:  vc.vtDeadline,
				vtPendEvent: vc.vtPendEvent,
				runs:        vc.runs,
			}
			for _, a := range vc.saved {
				cs.acts = append(cs.acts, machine.SnapshotActivity(a))
			}
			vs.vcpus = append(vs.vcpus, cs)
		}
		s.vms = append(s.vms, vs)
	}
	return s
}

// Restore reinstalls a snapshot taken on this hypervisor. The node's
// engine must already be restored (watchdog and vtimer Event handles
// revalidate against it), which Node.Restore guarantees.
func (h *Hypervisor) Restore(st sim.State) {
	s, ok := st.(*hypState)
	if !ok {
		panic(fmt.Sprintf("hafnium: Hypervisor.Restore of foreign state %T", st))
	}
	copy(h.cur, s.cur)
	copy(h.preempted, s.preempted)
	copy(h.lastVMID, s.lastVMID)
	copy(h.enteredAt, s.enteredAt)
	h.vmCPU = make(map[VMID]sim.Duration, len(s.vmCPU))
	for k, v := range s.vmCPU {
		h.vmCPU[k] = v
	}
	// The frame-owner map has one entry per physical page; skip the
	// rebuild when the version stamps match (ownership never changed
	// since the capture), which keeps verbatim forks O(dirtied state).
	if h.ownerVer != s.ownerVer {
		h.owner = make(map[mem.PA]VMID, len(s.owner))
		for k, v := range s.owner {
			h.owner[k] = v
		}
		h.ownerVer = s.ownerVer
	}
	h.shares = make(map[uint64]*shareRecord, len(s.shares))
	for id, rec := range s.shares {
		cp := *rec
		h.shares[id] = &cp
	}
	h.nextShareID = s.nextShareID
	h.nsAlloc.Restore(s.nsAlloc)
	if h.sAlloc != nil && s.sAlloc != nil {
		h.sAlloc.Restore(s.sAlloc)
	}
	h.booted = s.booted
	h.stats = s.stats
	for i, id := range h.order {
		vm := h.vms[id]
		vs := &s.vms[i]
		vm.state = vs.state
		// Repoint at the table/cache objects the snapshot saw (crash
		// recovery may have swapped them since), then rewind them.
		vm.stage2 = vs.stage2
		vm.stage2.Restore(vs.stage2St)
		vm.s2cache = vs.s2cache
		vm.s2cache.Restore(vs.s2cacheSt)
		vm.nextShareIPA = vs.nextShareIPA
		vm.mailbox = nil
		if vs.mailbox != nil {
			mb := *vs.mailbox
			mb.Payload = append([]byte(nil), vs.mailbox.Payload...)
			vm.mailbox = &mb
		}
		vm.mmio = append(vm.mmio[:0], vs.mmio...)
		vm.restarts = vs.restarts
		vm.watchdog = vs.watchdog
		vm.crashReason = vs.crashReason
		vm.warmS2 = vs.warmS2
		vm.warmShareIPA = vs.warmShareIPA
		for j, vc := range vm.vcpus {
			cs := &vs.vcpus[j]
			vc.state = cs.state
			vc.core = cs.core
			vc.saved = append(vc.saved[:0], cs.saved...)
			for _, as := range cs.acts {
				as.Restore()
			}
			vc.pending = append(vc.pending[:0], cs.pending...)
			vc.booted = cs.booted
			vc.vtArmed = cs.vtArmed
			vc.vtDeadline = cs.vtDeadline
			vc.vtPendEvent = cs.vtPendEvent
			vc.runs = cs.runs
		}
	}
}
