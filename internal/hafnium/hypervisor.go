package hafnium

import (
	"fmt"

	"khsim/internal/gic"
	"khsim/internal/machine"
	"khsim/internal/mem"
	"khsim/internal/metrics"
	"khsim/internal/sim"
	"khsim/internal/timer"
	"khsim/internal/tz"
)

// Stats counts hypervisor activity for the evaluation harness.
type Stats struct {
	Traps         uint64 // EL2 entries from physical interrupts
	WorldSwitches uint64 // guest→primary and primary→guest transitions
	Runs          uint64 // RunVCPU hypercalls
	Injections    uint64 // virtual interrupts delivered to guests
	Forwards      uint64 // device IRQs forwarded to the super-secondary
	Kicks         uint64 // cross-core SGI kicks
	Messages      uint64 // mailbox sends
	Notifications uint64 // doorbell notifications
	Aborts        uint64 // VM crashes contained (every abort path)
	Restarts      uint64 // watchdog restarts of crashed VMs
	Quarantines   uint64 // VMs taken out of service after crashing
	ScrubbedPages uint64 // pages scrubbed during grant revocation and restart
	BadHypercalls uint64 // guest API misuse answered with a contained crash
	// SnapshotRestores counts watchdog restarts served from the boot-time
	// warm stage-2 snapshot instead of a cold table rebuild.
	SnapshotRestores uint64
	// MigratedOut counts VMs whose live migration off this node committed
	// (image released and scrubbed here, resumed elsewhere).
	MigratedOut uint64
	// MigratedIn counts migrated VM images admitted and resumed here.
	MigratedIn uint64
	// MigrationAborts counts migrations rolled back to this (source) node
	// after a failed transfer.
	MigrationAborts uint64
	// RecyclesWarm counts stopped VMs recycled by rewinding the live
	// stage-2 table to the boot-time warm snapshot (serving-pool reuse).
	RecyclesWarm uint64
	// RecyclesCold counts stopped VMs recycled with a full cold stage-2
	// rebuild (no warm image, or the caller declined the warm path).
	RecyclesCold uint64
}

// Hypervisor is the EL2 secure partition manager instance for one node.
type Hypervisor struct {
	node     *machine.Node
	monitor  *tz.Monitor
	manifest *Manifest

	vms     map[VMID]*VM
	order   []VMID
	primary *VM
	super   *VM

	primaryOS PrimaryOS

	cur       []*VCPU               // per core; nil = primary context
	preempted []*VCPU               // per core: guest displaced by the last primary IRQ
	lastVMID  []VMID                // per core: last guest VMID resident (TLB tagging)
	enteredAt []sim.Time            // per core: when the resident guest took the core
	vmCPU     map[VMID]sim.Duration // accumulated guest CPU time

	owner       map[mem.PA]VMID
	shares      map[uint64]*shareRecord
	nextShareID uint64

	// ownerVer/ownerStamp version the frame-owner map for snapshot and
	// restore: every mutation stamps ownerVer from the monotone
	// ownerStamp, and a restore copies the snapshot's ownerVer with its
	// content, so equal versions mean equal maps and Restore can skip
	// rebuilding the (one entry per physical page) map. ownerStamp is
	// never rewound, which keeps versions unique across forked timelines.
	ownerVer   uint64
	ownerStamp uint64

	nsAlloc *mem.Buddy
	sAlloc  *mem.Buddy

	routing   IRQRouting
	tlbPolicy TLBPolicy
	booted    bool

	// onLifecycle, when set, observes crash/restart/quarantine transitions
	// (see SetLifecycleHook).
	onLifecycle func(LifecycleEvent)

	stats Stats

	// Cached hot-path registry counters (per physical core / global);
	// per-VM counters live on the VM structs.
	mTraps []*metrics.Counter
	mKicks *metrics.Counter
}

// metric returns the VM-labelled el2 counter for name (cold paths; hot
// paths cache pointers at build time).
func (h *Hypervisor) metric(name string, vm *VM) *metrics.Counter {
	return h.node.Metrics.Counter(metrics.K("el2", name).WithVM(vm.spec.Name))
}

// hypercall counts one ABI invocation by function name, attributed to
// the VM it concerns.
func (h *Hypervisor) hypercall(fn string, vm *VM) {
	h.node.Metrics.Counter(metrics.K("el2", "hypercall."+fn).WithVM(vm.spec.Name)).Inc()
}

// worldSwitch accounts one world switch for vm with the EL2 cycle cost
// charged for it (entry/exit trap plus context switch, and for RunVCPU
// the TLB refill transient).
func (h *Hypervisor) worldSwitch(vm *VM, cost sim.Duration) {
	h.stats.WorldSwitches++
	vm.mWorldSwitches.Inc()
	vm.mSwitchCostPS.Add(uint64(cost))
}

// hypReservedMB is DRAM held back for Hafnium itself (text, per-VM
// metadata, page-table pool).
const hypReservedMB = 16

// New builds the hypervisor from a validated manifest over the node.
// A TrustZone monitor is optional; it is required only when the manifest
// declares secure VMs, and a secure carve-out sized to fit them is
// configured before Freeze.
func New(node *machine.Node, m *Manifest, monitor *tz.Monitor) (*Hypervisor, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	h := &Hypervisor{
		node:      node,
		monitor:   monitor,
		manifest:  m,
		vms:       make(map[VMID]*VM),
		cur:       make([]*VCPU, len(node.Cores)),
		preempted: make([]*VCPU, len(node.Cores)),
		lastVMID:  make([]VMID, len(node.Cores)),
		enteredAt: make([]sim.Time, len(node.Cores)),
		vmCPU:     make(map[VMID]sim.Duration),
		owner:     make(map[mem.PA]VMID),
		shares:    make(map[uint64]*shareRecord),
		routing:   m.Routing,
		tlbPolicy: m.TLB,
	}
	for i := range node.Cores {
		h.mTraps = append(h.mTraps, node.Metrics.Counter(metrics.K("el2", "traps").WithCore(i)))
	}
	h.mKicks = node.Metrics.Counter(metrics.K("el2", "kicks"))
	dram, ok := node.Mem.FindName("dram")
	if !ok {
		return nil, fmt.Errorf("hafnium: node has no DRAM region")
	}
	// Carve the secure world first (static boot-time partitioning), then
	// build the non-secure allocator over what remains.
	var secureBytes uint64
	for _, spec := range m.VMs {
		if spec.Secure {
			secureBytes += uint64(spec.MemMB) << 20
		}
	}
	nsBase := dram.Base + mem.PA(uint64(hypReservedMB)<<20)
	nsSize := dram.Size - uint64(hypReservedMB)<<20 - secureBytes
	if secureBytes > 0 {
		if monitor == nil {
			return nil, fmt.Errorf("hafnium: manifest has secure VMs but no TrustZone monitor")
		}
		sBase := dram.Base + mem.PA(dram.Size-secureBytes)
		if err := monitor.AddSecureRegion("hafnium-secure", sBase, secureBytes); err != nil {
			return nil, err
		}
		sa, err := mem.NewBuddy(sBase, secureBytes)
		if err != nil {
			return nil, err
		}
		h.sAlloc = sa
	}
	na, err := mem.NewBuddy(nsBase, nsSize)
	if err != nil {
		return nil, err
	}
	h.nsAlloc = na
	if monitor != nil {
		monitor.Freeze()
	}

	// Assign IDs: primary = 1, super-secondary = 2, secondaries from 3.
	next := FirstSecondaryID
	for _, spec := range m.VMs {
		var id VMID
		switch spec.Class {
		case Primary:
			id = PrimaryID
		case SuperSecondary:
			id = SuperSecondaryID
		default:
			id = next
			next++
		}
		vm, err := h.buildVM(id, spec)
		if err != nil {
			return nil, err
		}
		h.vms[id] = vm
		h.order = append(h.order, id)
		switch spec.Class {
		case Primary:
			h.primary = vm
		case SuperSecondary:
			h.super = vm
		}
	}
	// Device I/O: Hafnium maps all MMIO to the primary by default; with a
	// super-secondary configured, the windows go there instead (§III-b) —
	// except the GIC, which EL2 keeps virtualized for everyone.
	ioVM := h.primary
	if h.super != nil {
		ioVM = h.super
	}
	for _, r := range node.Mem.Regions() {
		if !r.Attr.Device || r.Name == "gic" {
			continue
		}
		if err := ioVM.mapMMIO(r); err != nil {
			return nil, err
		}
	}
	node.RegisterSnapshotter("hafnium", h)
	return h, nil
}

// Node returns the underlying machine.
func (h *Hypervisor) Node() *machine.Node { return h.node }

// Stats returns a snapshot of the counters.
func (h *Hypervisor) Stats() Stats { return h.stats }

// Manifest returns the boot manifest.
func (h *Hypervisor) Manifest() *Manifest { return h.manifest }

// VM looks up a partition by ID.
func (h *Hypervisor) VM(id VMID) (*VM, bool) {
	v, ok := h.vms[id]
	return v, ok
}

// VMByName looks up a partition by manifest name.
func (h *Hypervisor) VMByName(name string) (*VM, bool) {
	for _, id := range h.order {
		if h.vms[id].spec.Name == name {
			return h.vms[id], true
		}
	}
	return nil, false
}

// VMs returns all partitions in manifest order.
func (h *Hypervisor) VMs() []*VM {
	out := make([]*VM, 0, len(h.order))
	for _, id := range h.order {
		out = append(out, h.vms[id])
	}
	return out
}

// Primary returns the primary VM.
func (h *Hypervisor) Primary() *VM { return h.primary }

// Super returns the super-secondary VM, or nil.
func (h *Hypervisor) Super() *VM { return h.super }

// AttachPrimary installs the scheduling kernel.
func (h *Hypervisor) AttachPrimary(os PrimaryOS) { h.primaryOS = os }

// AttachGuest installs a guest kernel in a secondary or super-secondary VM.
func (h *Hypervisor) AttachGuest(id VMID, g GuestOS) error {
	vm, ok := h.vms[id]
	if !ok {
		return ErrBadVM
	}
	if vm.spec.Class == Primary {
		return fmt.Errorf("hafnium: primary VM does not take a GuestOS")
	}
	vm.guest = g
	return nil
}

// Boot finalizes setup: installs the EL2 trap dispatcher on every core,
// enables the interrupt sources EL2 owns, marks VMs runnable, and starts
// the primary kernel.
func (h *Hypervisor) Boot() error {
	if h.primaryOS == nil {
		return fmt.Errorf("hafnium: Boot before AttachPrimary")
	}
	for _, id := range h.order {
		vm := h.vms[id]
		if vm.spec.Class != Primary && vm.guest == nil {
			return fmt.Errorf("hafnium: VM %q has no guest kernel attached", vm.spec.Name)
		}
	}
	d := h.node.GIC
	for _, irq := range []int{gic.IRQPhysTimer, gic.IRQVirtualTimer, gic.IRQHypTimer} {
		if err := d.Enable(irq); err != nil {
			return err
		}
	}
	// Timer interrupts outrank everything; the kick SGI and mailbox SGI
	// are ordinary priority.
	d.SetPriority(gic.IRQPhysTimer, 0x20)
	d.SetPriority(gic.IRQVirtualTimer, 0x20)
	if err := d.Enable(VIRQKick); err != nil {
		return err
	}
	if err := d.Enable(VIRQMailbox); err != nil {
		return err
	}
	if err := d.Enable(VIRQNotification); err != nil {
		return err
	}
	for _, c := range h.node.Cores {
		c.SetDispatcher(h.trap)
		c.SetOnIdle(h.coreIdle)
	}
	for _, id := range h.order {
		vm := h.vms[id]
		if vm.spec.Standby {
			// Standby slot: built and mapped, but held stopped until a
			// live-migration AdmitVM starts it.
			vm.state = VMStopped
			continue
		}
		vm.state = VMRunning
		for _, vc := range vm.vcpus {
			if vm.spec.Class != Primary {
				vc.state = VCPURunnable
			}
		}
		if vm.spec.RestartFromSnapshot {
			// Warm restart image: freeze the pristine stage-2 table (O(1),
			// copy-on-write) so the watchdog can rewind to it instead of
			// rebuilding the table cold.
			vm.warmS2 = vm.stage2.Snapshot()
			vm.warmShareIPA = vm.nextShareIPA
		}
	}
	h.booted = true
	h.primaryOS.Boot()
	return nil
}

// Preempted reports (and clears) the guest VCPU displaced by the most
// recent primary-bound interrupt on core c. The primary's scheduler uses
// it to decide whether to resume the guest after handling a tick.
func (h *Hypervisor) Preempted(c *machine.Core) *VCPU {
	vc := h.preempted[c.ID()]
	h.preempted[c.ID()] = nil
	return vc
}

// Resident reports the guest VCPU currently occupying core, or nil when
// the core is in primary context.
func (h *Hypervisor) Resident(core int) *VCPU { return h.cur[core] }

// trap is the EL2 interrupt entry installed on every physical core.
func (h *Hypervisor) trap(c *machine.Core) {
	id := c.ID()
	irq := h.node.GIC.Acknowledge(id)
	if irq == gic.SpuriousIRQ {
		return
	}
	h.node.GIC.EOI(id, irq)
	h.stats.Traps++
	h.mTraps[id].Inc()
	cur := h.cur[id]
	costs := h.node.Costs

	if cur == nil {
		// Primary context. All physical IRQs here belong to the primary
		// (EL2 still interposes: charge the trap before delivery).
		c.ExecUninterruptible("el2.trap", costs.HypTrap, func() {
			h.primaryOS.HandleIRQ(c, irq)
		})
		return
	}

	// Guest resident on this core.
	switch {
	case irq == timer.Virt.PPI():
		// The guest's own virtual timer: injected directly, no primary
		// involvement — the low-overhead path the paper's design buys.
		cur.vtArmed = false
		h.inject(c, cur, gic.IRQVirtualTimer)
	case irq == VIRQKick:
		h.handleKick(c, cur)
	case h.routing == RouteSelective && h.super != nil && cur.vm == h.super && gic.ClassOf(irq) == gic.SPI:
		// Future-work selective routing: a device IRQ lands while the
		// super-secondary is resident — deliver without a world switch.
		h.inject(c, cur, irq)
	default:
		// Primary-owned interrupt (its tick timer, a device IRQ to
		// forward, a mailbox SGI): world switch out to the primary.
		h.switchOut(c, cur, irq)
	}
}

// inject delivers a virtual interrupt to the resident guest: EL2 entry
// plus list-register traffic, then the guest's handler in guest context.
func (h *Hypervisor) inject(c *machine.Core, vc *VCPU, virq int) {
	h.stats.Injections++
	vc.vm.mInjections.Inc()
	costs := h.node.Costs
	c.ExecUninterruptible("el2.inject", costs.HypTrap+costs.IRQDeliverGIC, func() {
		vc.vm.guest.HandleVIRQ(vc, virq)
	})
}

// handleKick processes a cross-core SGI sent to this core: deliver any
// pending virtual interrupts, or force an exit if the VM was stopped or
// crashed underneath its resident VCPU.
func (h *Hypervisor) handleKick(c *machine.Core, vc *VCPU) {
	if vc.vm.state != VMRunning {
		h.forceExit(c, vc, deadExitReason(vc.vm.state))
		return
	}
	h.drainPending(c, vc)
}

// deadExitReason maps a non-running VM state to the exit reason its
// ejected VCPUs report.
func deadExitReason(s VMState) ExitReason {
	if s == VMCrashed || s == VMQuarantined {
		return ExitAborted
	}
	return ExitStopped
}

// drainPending injects all queued virtual interrupts into the resident
// guest, one handler frame each.
func (h *Hypervisor) drainPending(c *machine.Core, vc *VCPU) {
	if len(vc.pending) == 0 {
		return
	}
	virq := vc.pending[0]
	vc.pending = vc.pending[1:]
	h.stats.Injections++
	vc.vm.mInjections.Inc()
	costs := h.node.Costs
	c.ExecUninterruptible("el2.inject", costs.HypTrap+costs.IRQDeliverGIC, func() {
		vc.vm.guest.HandleVIRQ(vc, virq)
		// Chain the next pending injection after this handler's work.
		if len(vc.pending) > 0 && vc.core == c.ID() {
			c.CallHandler(func(c *machine.Core) { h.drainPending(c, vc) })
		}
	})
}

// switchOut performs the guest→primary world switch for interrupt irq.
func (h *Hypervisor) switchOut(c *machine.Core, vc *VCPU, irq int) {
	id := c.ID()
	vc.saved = c.StealAllSuspended() // empty if the guest was between activities
	vc.state = VCPURunnable
	vc.core = -1
	h.accountCPU(id, vc)
	h.parkVTimer(vc, id)
	h.cur[id] = nil
	h.preempted[id] = vc
	costs := h.node.Costs
	h.worldSwitch(vc.vm, costs.HypTrap+costs.WorldSwitch)
	if h.tlbPolicy == TLBFlushAll {
		c.TLB().InvalidateAll()
		vc.vm.s2cache.Flush() // flush-all policy drops walk-cache state too
	}
	c.ExecUninterruptible("el2.worldswitch", costs.HypTrap+costs.WorldSwitch, func() {
		h.primaryOS.HandleIRQ(c, irq)
	})
}

// forceExit ejects a guest whose VM stopped (kick path).
func (h *Hypervisor) forceExit(c *machine.Core, vc *VCPU, reason ExitReason) {
	id := c.ID()
	// Discard in-flight work: the VM is gone.
	c.StealAllSuspended()
	vc.saved = nil
	vc.state = VCPUStopped
	vc.core = -1
	h.accountCPU(id, vc)
	vc.CancelVTimer()
	h.cur[id] = nil
	costs := h.node.Costs
	h.worldSwitch(vc.vm, costs.HypTrap+costs.WorldSwitch)
	c.ExecUninterruptible("el2.worldswitch", costs.HypTrap+costs.WorldSwitch, func() {
		h.primaryOS.VCPUExited(c, vc, reason)
	})
}

// guestExit handles voluntary exits (yield/block) from guest context.
// Misuse — exiting with suspended guest work, or an exit reason the
// hypercall interface does not define — is guest-attributable and crashes
// the offending VM rather than the simulator.
func (h *Hypervisor) guestExit(vc *VCPU, reason ExitReason) {
	c := vc.resident()
	if c == nil {
		return
	}
	id := c.ID()
	if vm := vc.vm; vm.state != VMRunning {
		// The VM stopped or crashed underneath this VCPU (StopVM from the
		// control task, a sibling abort on another core) and the exit
		// raced the eviction kick: eject it now.
		h.forceExit(c, vc, deadExitReason(vm.state))
		return
	}
	if c.Depth() != 0 {
		h.stats.BadHypercalls++
		h.abortFromGuest(vc, fmt.Sprintf("exit with suspended guest work %v", c.StackLabels()))
		return
	}
	switch reason {
	case ExitYield:
		vc.state = VCPURunnable
	case ExitBlocked:
		if len(vc.pending) > 0 {
			// FFA semantics: waiting with interrupts pending returns
			// immediately — report a yield so the primary requeues the
			// VCPU and the pending virq is delivered on the next entry.
			// Without this, a doorbell racing the block is lost forever.
			reason = ExitYield
			vc.state = VCPURunnable
		} else {
			vc.state = VCPUBlocked
		}
	default:
		h.stats.BadHypercalls++
		h.abortFromGuest(vc, fmt.Sprintf("invalid exit reason %d", int(reason)))
		return
	}
	vc.saved = nil
	vc.core = -1
	h.accountCPU(id, vc)
	h.parkVTimer(vc, id)
	h.cur[id] = nil
	costs := h.node.Costs
	h.hypercall("exit", vc.vm)
	h.worldSwitch(vc.vm, costs.HypTrap+costs.WorldSwitch)
	c.ExecUninterruptible("el2.exit", costs.HypTrap+costs.WorldSwitch, func() {
		h.primaryOS.VCPUExited(c, vc, reason)
	})
}

// guestAbort marks the whole VM crashed and exits to the primary. It
// also tolerates being reported from a descheduled context (the VM still
// dies, without a world switch).
func (h *Hypervisor) guestAbort(vc *VCPU) {
	reason := "guest abort (" + vc.String() + ")"
	if vc.core < 0 {
		h.crashVM(vc.vm, reason)
		return
	}
	h.abortFromGuest(vc, reason)
}

// coreIdle fires when a core runs out of work. In guest context that
// means the guest stopped scheduling anything — treat as an implicit
// block; in primary context, hand the core to the primary's idle loop.
func (h *Hypervisor) coreIdle(c *machine.Core) {
	if !h.booted {
		return
	}
	if vc := h.cur[c.ID()]; vc != nil {
		h.guestExit(vc, ExitBlocked)
		return
	}
	h.primaryOS.CoreIdle(c)
}

// RunVCPU is the primary's core-local scheduling hypercall: world switch
// core c into vc. Must be called from primary context on c (the paper's
// §II-a: "it is not possible for Linux to invoke a VM context switch on
// another core than the one it is executing the hypercall from").
func (h *Hypervisor) RunVCPU(c *machine.Core, vc *VCPU) error {
	id := c.ID()
	if h.cur[id] != nil {
		return fmt.Errorf("hafnium: RunVCPU from guest context on core %d", id)
	}
	if vc == nil {
		return ErrBadVCPU
	}
	if vc.vm.state != VMRunning {
		return ErrNotRunning
	}
	switch vc.state {
	case VCPURunnable, VCPUBlocked:
		// Blocked VCPUs may be run explicitly; they will block again if
		// nothing arrived (mirrors Hafnium's run-on-demand).
	case VCPURunning:
		return fmt.Errorf("hafnium: %s already running on core %d", vc, vc.core)
	default:
		return fmt.Errorf("hafnium: %s is %v", vc, vc.state)
	}
	h.stats.Runs++
	vc.vm.mRuns.Inc()
	h.hypercall("run", vc.vm)
	vc.state = VCPURunning
	vc.core = id
	vc.runs++
	h.cur[id] = vc
	h.preempted[id] = nil
	h.enteredAt[id] = h.node.Now()

	// Virtual timer restore.
	h.node.Engine.Cancel(vc.vtPendEvent)
	vc.vtPendEvent = sim.Event{}
	if vc.vtArmed {
		// An already-passed deadline is delivered as a pending virq.
		if vc.vtDeadline <= h.node.Now() {
			vc.vtArmed = false
			vc.pendVIRQ(gic.IRQVirtualTimer)
		} else {
			h.node.Timers.Core(id).Arm(timer.Virt, vc.vtDeadline)
		}
	}

	costs := h.node.Costs
	entry := costs.HypTrap + costs.WorldSwitch
	// TLB transient: a flushed (or capacity-evicted) stage-2 working set
	// re-faults entry by entry after the switch.
	entry += h.refillCost(c, vc)
	h.worldSwitch(vc.vm, entry)
	h.lastVMID[id] = vc.vm.id

	// Detach the saved frames now: the VCPU is resident from this point,
	// so a primary-bound interrupt during the entry window switches it
	// back out and must not clobber the context being restored (the
	// interrupted entry becomes part of the frame chain instead).
	frames := vc.saved
	vc.saved = nil
	c.ExecUninterruptible("el2.run", entry, func() {
		if !vc.booted {
			vc.booted = true
			vc.vm.guest.Boot(vc)
		} else if len(frames) > 0 {
			c.RestoreStack(frames)
		}
		// Boot may already have exited the VCPU: a guest that parks
		// itself at boot while a doorbell is pending blocks, converts to
		// a yield (FFA semantics) and is descheduled by the time control
		// returns here. The virq then belongs to the next entry — it must
		// not be injected into a context that is no longer resident.
		if vc.core == id && len(vc.pending) > 0 {
			c.CallHandler(func(c *machine.Core) { h.drainPending(c, vc) })
		}
	})
	return nil
}

// refillCost models the TLB warm-up the incoming guest pays.
func (h *Hypervisor) refillCost(c *machine.Core, vc *VCPU) sim.Duration {
	ws := vc.vm.spec.WorkingSetPages
	if ws <= 0 {
		ws = 64
	}
	if ws > c.TLB().Entries() {
		ws = c.TLB().Entries()
	}
	var pages int
	if h.tlbPolicy == TLBFlushAll {
		pages = ws
	} else {
		// VMID-tagged: only what the primary's activation evicted.
		ev := h.primaryOS.EvictionPages()
		if ev < ws {
			pages = ev
		} else {
			pages = ws
		}
	}
	return sim.Duration(pages) * h.node.Costs.TLBRefill
}

// parkVTimer moves a resident VCPU's virtual timer from the physical
// channel to an engine-side watcher.
func (h *Hypervisor) parkVTimer(vc *VCPU, core int) {
	h.node.Timers.Core(core).CancelChannel(timer.Virt)
	if vc.vtArmed {
		h.watchVTimer(vc)
	}
}

// watchVTimer pends the virtual-timer interrupt when the deadline passes
// while the VCPU is descheduled, and tells the primary it is ready.
func (h *Hypervisor) watchVTimer(vc *VCPU) {
	h.node.Engine.Cancel(vc.vtPendEvent)
	at := vc.vtDeadline
	if at < h.node.Now() {
		at = h.node.Now()
	}
	if vc.vtWatchFn == nil {
		// A VCPU's watcher is rescheduled on every deschedule with an
		// armed vtimer; build the event name and callback once.
		vc.vtWatchName = "hafnium.vtimer." + vc.String()
		vc.vtWatchFn = func() {
			vc.vtPendEvent = sim.Event{}
			if !vc.vtArmed || vc.core >= 0 {
				return
			}
			vc.vtArmed = false
			vc.pendVIRQ(gic.IRQVirtualTimer)
			if vc.state == VCPUBlocked {
				vc.state = VCPURunnable
			}
			h.primaryOS.VCPUReady(vc)
		}
	}
	vc.vtPendEvent = h.node.Engine.ScheduleNamed(at, vc.vtWatchName, vc.vtWatchFn)
}

// kick sends the hypervisor's cross-core SGI to a physical core. A
// rejected SGI (bad core number) is reported to the caller rather than
// taking the simulator down; callers treat the kick as best-effort.
func (h *Hypervisor) kick(core int) error {
	if err := h.node.GIC.SendSGI(core, VIRQKick); err != nil {
		return fmt.Errorf("hafnium: kick core %d: %w", core, err)
	}
	h.stats.Kicks++
	h.mKicks.Inc()
	return nil
}

// InjectDeviceIRQ forwards a device interrupt into a VM as a virtual
// interrupt — the primary's forwarding path of §III-b ("route all
// interrupts to the primary VM which is then responsible for forwarding
// any device IRQ on to the super-secondary").
func (h *Hypervisor) InjectDeviceIRQ(to VMID, virq int) error {
	vm, ok := h.vms[to]
	if !ok {
		return ErrBadVM
	}
	if vm.spec.Class == Primary {
		return fmt.Errorf("hafnium: cannot inject into the primary")
	}
	if vm.state != VMRunning {
		return ErrNotRunning
	}
	h.stats.Forwards++
	h.metric("device_forwards", vm).Inc()
	h.pendToVM(vm, virq)
	return nil
}

// pendToVM queues a virq on the VM's VCPU 0 and arranges delivery.
func (h *Hypervisor) pendToVM(vm *VM, virq int) {
	vc := vm.vcpus[0]
	vc.pendVIRQ(virq)
	if vc.core >= 0 {
		_ = h.kick(vc.core) // core came from a resident VCPU; cannot fail
		return
	}
	if vc.state == VCPUBlocked {
		vc.state = VCPURunnable
	}
	h.primaryOS.VCPUReady(vc)
}

// StopVM stops a secondary or super-secondary VM, ejecting resident VCPUs.
func (h *Hypervisor) StopVM(id VMID) error {
	vm, ok := h.vms[id]
	if !ok {
		return ErrBadVM
	}
	if vm.spec.Class == Primary {
		return fmt.Errorf("hafnium: refusing to stop the primary")
	}
	if vm.state != VMRunning {
		return ErrNotRunning
	}
	vm.state = VMStopped
	for _, vc := range vm.vcpus {
		if vc.core >= 0 {
			_ = h.kick(vc.core)
		} else {
			vc.state = VCPUStopped
			vc.CancelVTimer()
			vc.saved = nil
		}
	}
	return nil
}

// RestartVM returns a stopped VM to service (fresh boot of its VCPUs).
func (h *Hypervisor) RestartVM(id VMID) error {
	vm, ok := h.vms[id]
	if !ok {
		return ErrBadVM
	}
	if vm.state != VMStopped {
		return fmt.Errorf("hafnium: VM %q is %v, not stopped", vm.spec.Name, vm.state)
	}
	vm.state = VMRunning
	for _, vc := range vm.vcpus {
		vc.state = VCPURunnable
		vc.booted = false
		vc.saved = nil
		vc.pending = nil
		h.primaryOS.VCPUReady(vc)
	}
	return nil
}

// msgSend implements the mailbox hypercall. Allowed pairs: the primary
// may message anyone; the super-secondary and secondaries may message
// only the primary (the paper's secure job-control channel).
func (h *Hypervisor) msgSend(from, to VMID, payload []byte) error {
	src, ok := h.vms[from]
	if !ok {
		return ErrBadVM
	}
	dst, ok := h.vms[to]
	if !ok {
		return ErrBadVM
	}
	if src.spec.Class != Primary && to != PrimaryID {
		return ErrDenied
	}
	if dst.state != VMRunning {
		return ErrNotRunning
	}
	if dst.mailbox != nil {
		return ErrBusy
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	dst.mailbox = &Message{From: from, Payload: cp}
	h.stats.Messages++
	h.hypercall("msg_send", src)
	if dst.spec.Class == Primary {
		// Notify the primary with a mailbox SGI on core 0; if a guest is
		// resident there, the SGI world-switches it out like any
		// primary-owned interrupt. One exception: the sender itself may
		// be that resident guest. Hardware takes the physical interrupt
		// only after the hypercall's ERET, so the switch-out must not
		// fire inside the caller's own hypercall sequence — deliver the
		// SGI once the current instant's guest work has unwound (by
		// which point a send-then-wait caller has parked and core 0 is
		// free for the primary).
		if cur := h.cur[0]; cur != nil && cur.vm == src {
			h.node.Engine.AfterNamed(0, "el2.sgi.self", func() {
				_ = h.node.GIC.SendSGI(0, VIRQMailbox)
			})
			return nil
		}
		if err := h.node.GIC.SendSGI(0, VIRQMailbox); err != nil {
			return err
		}
		return nil
	}
	h.pendToVM(dst, VIRQMailbox)
	return nil
}

// msgRecv pops a VM's mailbox.
func (h *Hypervisor) msgRecv(id VMID) (Message, error) {
	vm, ok := h.vms[id]
	if !ok {
		return Message{}, ErrBadVM
	}
	if vm.mailbox == nil {
		return Message{}, ErrEmpty
	}
	msg := *vm.mailbox
	vm.mailbox = nil
	h.hypercall("msg_recv", vm)
	return msg, nil
}

// SendFromPrimary is the primary kernel's mailbox send.
func (h *Hypervisor) SendFromPrimary(to VMID, payload []byte) error {
	return h.msgSend(PrimaryID, to, payload)
}

// RecvForPrimary pops the primary's mailbox.
func (h *Hypervisor) RecvForPrimary() (Message, error) {
	return h.msgRecv(PrimaryID)
}

// accountCPU folds the residency span ending now into the VM's total.
func (h *Hypervisor) accountCPU(core int, vc *VCPU) {
	h.vmCPU[vc.vm.id] += h.node.Now().Sub(h.enteredAt[core])
}

// CPUTime reports the total core time a VM's VCPUs have been resident
// (including EL2 entry/exit costs charged on its behalf).
func (h *Hypervisor) CPUTime(id VMID) sim.Duration { return h.vmCPU[id] }

// FrameOwner reports which VM owns a physical page.
func (h *Hypervisor) FrameOwner(pa mem.PA) VMID {
	return h.owner[mem.PageAlign(pa)]
}

// touchOwner stamps the frame-owner map as mutated (see ownerVer).
func (h *Hypervisor) touchOwner() {
	h.ownerStamp++
	h.ownerVer = h.ownerStamp
}
