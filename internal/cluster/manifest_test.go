package cluster

import (
	"strings"
	"testing"

	"khsim/internal/sim"
)

const sampleManifest = `
# example rack
[cluster]
nodes = 3
link_latency_us = 25
link_bandwidth_mbps = 500
election_timeout_us = 5000
heartbeat_us = 1000
replica_vm = attest
run_ms = 250
propose_interval_us = 2000

[vm primary]
class = primary
vcpus = 2
memory_mb = 128

[vm attest]
class = secondary
vcpus = 1
memory_mb = 64
restart_policy = restart
restart_backoff_us = 20000

[fault crash]
target = leader
at_ms = 100

[fault partition]
target = node2
at_ms = 150

[fault netdelay]
target = node1
at_ms = 50
extra_us = 200
window_ms = 2
`

func TestParseManifest(t *testing.T) {
	m, err := ParseManifest(sampleManifest)
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes != 3 || m.ReplicaVM != "attest" {
		t.Fatalf("nodes=%d replica=%q", m.Nodes, m.ReplicaVM)
	}
	if m.Link.Latency != sim.FromMicros(25) || m.Link.Bandwidth != 500e6 {
		t.Fatalf("link = %+v", m.Link)
	}
	if m.Protocol.ElectionMin != sim.FromMicros(5000) || m.Protocol.Heartbeat != sim.FromMicros(1000) {
		t.Fatalf("protocol = %+v", m.Protocol)
	}
	if m.Run != sim.FromMicros(250000) || m.ProposeEvery != sim.FromMicros(2000) {
		t.Fatalf("run=%v every=%v", m.Run, m.ProposeEvery)
	}
	if len(m.Faults) != 3 {
		t.Fatalf("faults = %+v", m.Faults)
	}
	if f := m.Faults[0]; f.Kind != "crash" || f.Target != "leader" || f.At != sim.FromMicros(100000) {
		t.Fatalf("fault 0 = %+v", f)
	}
	if f := m.Faults[2]; f.Extra != sim.FromMicros(200) || f.Window != sim.FromMicros(2000) {
		t.Fatalf("fault 2 = %+v", f)
	}
	// The embedded node plan survives verbatim (comments aside).
	for _, want := range []string{"[vm primary]", "[vm attest]", "restart_backoff_us = 20000"} {
		if !strings.Contains(m.NodePlan, want) {
			t.Fatalf("node plan missing %q:\n%s", want, m.NodePlan)
		}
	}
}

func TestParseManifestRejects(t *testing.T) {
	cases := map[string]string{
		"no vm sections":   "[cluster]\nnodes = 3\n",
		"one node":         "[cluster]\nnodes = 1\n[vm primary]\nclass = primary\n",
		"unknown kind":     "[vm primary]\nclass = primary\n[fault meteor]\nat_ms = 1\n",
		"unknown key":      "[cluster]\nwat = 1\n[vm primary]\nclass = primary\n",
		"key outside":      "nodes = 3\n[vm primary]\nclass = primary\n",
		"fault without at": "[vm primary]\nclass = primary\n[fault crash]\ntarget = leader\n",
		"fault past end":   "[cluster]\nrun_ms = 10\n[vm primary]\nclass = primary\n[fault crash]\nat_ms = 50\n",
		"bad number":       "[cluster]\nrun_ms = banana\n[vm primary]\nclass = primary\n",
	}
	for name, text := range cases {
		if _, err := ParseManifest(text); err == nil {
			t.Errorf("%s: accepted\n%s", name, text)
		}
	}
}
