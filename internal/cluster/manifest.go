package cluster

import (
	"fmt"
	"strconv"
	"strings"

	"khsim/internal/net"
	"khsim/internal/sim"
)

// ManifestFault is one scheduled fault in a cluster manifest: a VM kill
// or a network fault, fired at an absolute offset from boot. Targets:
//
//	crash      "leader" (resolved at fire time), "follower", or "node<N>"
//	partition  "node<N>", "leader" or "follower" (resolved at fire time)
//	heal       "node<N>" or "partitioned" (every partitioned node)
//	netdrop    "node<N>" (+ count)
//	netdelay   "node<N>" (+ extra_us, window_ms)
type ManifestFault struct {
	Kind   string
	Target string
	At     sim.Duration
	Count  int
	Extra  sim.Duration
	Window sim.Duration
}

// ClusterManifest is the parsed form of a cluster manifest: rack shape,
// link and protocol parameters, the per-node Hafnium partition plan
// (embedded [vm ...] sections, identical on every node), and the fault
// schedule.
type ClusterManifest struct {
	Nodes        int
	Link         net.LinkConfig
	Protocol     Config // Seed is filled in by the runner
	ReplicaVM    string
	Run          sim.Duration
	ProposeEvery sim.Duration
	// SpinChunk, when positive, chunks each replica VM's spin workload at
	// this granularity (noise.Selfish.ChunkTime) instead of one long
	// burn. Dense per-node event streams are what the parallel engine's
	// speedup benchmarks need; zero keeps the sparse default.
	SpinChunk sim.Duration
	// NodePlan is the embedded per-node Hafnium manifest text.
	NodePlan string
	Faults   []ManifestFault
}

var manifestFaultKinds = map[string]bool{
	"crash": true, "partition": true, "heal": true, "netdrop": true, "netdelay": true,
}

// ParseManifest reads the cluster manifest format: a [cluster] section
// with rack/link/protocol keys, ordinary [vm ...] sections forming the
// per-node partition plan, and [fault <kind>] sections scheduling the
// failure campaign:
//
//	[cluster]
//	nodes = 3
//	link_latency_us = 50
//	link_bandwidth_mbps = 1000
//	replica_vm = attest
//	run_ms = 1500
//
//	[vm primary]
//	class = primary
//	...
//
//	[fault partition]
//	target = node2
//	at_ms = 500
//
// Comments start with '#'. The [vm ...] sections pass through verbatim
// to hafnium.ParseManifest on every node.
func ParseManifest(text string) (*ClusterManifest, error) {
	m := &ClusterManifest{
		Nodes:        3,
		Link:         net.DefaultLink(),
		Protocol:     DefaultConfig(0),
		ReplicaVM:    "attest",
		Run:          sim.FromSeconds(1.5),
		ProposeEvery: sim.FromMicros(10000),
	}
	var plan strings.Builder
	section := "" // "", "cluster", "vm", or "fault"
	var fault *ManifestFault
	flushFault := func() {
		if fault != nil {
			m.Faults = append(m.Faults, *fault)
			fault = nil
		}
	}
	for ln, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("cluster: manifest line %d: unterminated section", ln+1)
			}
			flushFault()
			parts := strings.Fields(strings.Trim(line, "[]"))
			switch {
			case len(parts) == 1 && parts[0] == "cluster":
				section = "cluster"
			case len(parts) == 2 && parts[0] == "vm":
				section = "vm"
				fmt.Fprintf(&plan, "\n%s\n", line)
			case len(parts) == 2 && parts[0] == "fault":
				if !manifestFaultKinds[parts[1]] {
					return nil, fmt.Errorf("cluster: manifest line %d: unknown fault kind %q", ln+1, parts[1])
				}
				section = "fault"
				fault = &ManifestFault{Kind: parts[1]}
			default:
				return nil, fmt.Errorf("cluster: manifest line %d: expected [cluster], [vm <name>] or [fault <kind>]", ln+1)
			}
			continue
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("cluster: manifest line %d: expected key = value", ln+1)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch section {
		case "vm":
			fmt.Fprintf(&plan, "%s = %s\n", key, val)
		case "cluster":
			if err := m.clusterKey(key, val); err != nil {
				return nil, fmt.Errorf("cluster: manifest line %d: %w", ln+1, err)
			}
		case "fault":
			if err := faultKey(fault, key, val); err != nil {
				return nil, fmt.Errorf("cluster: manifest line %d: %w", ln+1, err)
			}
		default:
			return nil, fmt.Errorf("cluster: manifest line %d: key %q outside any section", ln+1, key)
		}
	}
	flushFault()
	m.NodePlan = plan.String()
	if m.NodePlan == "" {
		return nil, fmt.Errorf("cluster: manifest has no [vm ...] sections")
	}
	if m.Nodes < 2 {
		return nil, fmt.Errorf("cluster: manifest needs at least 2 nodes, got %d", m.Nodes)
	}
	for i, f := range m.Faults {
		if f.At <= 0 {
			return nil, fmt.Errorf("cluster: fault %d (%s) needs a positive at_ms", i, f.Kind)
		}
		if f.At > m.Run {
			return nil, fmt.Errorf("cluster: fault %d (%s) fires at %v, after the %v run", i, f.Kind, f.At, m.Run)
		}
	}
	return m, nil
}

func (m *ClusterManifest) clusterKey(key, val string) error {
	num := func() (float64, error) {
		v, err := strconv.ParseFloat(val, 64)
		if err != nil || v <= 0 {
			return 0, fmt.Errorf("%s: want a positive number, got %q", key, val)
		}
		return v, nil
	}
	switch key {
	case "nodes":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("nodes: %v", err)
		}
		m.Nodes = n
	case "link_latency_us":
		v, err := num()
		if err != nil {
			return err
		}
		m.Link.Latency = sim.FromMicros(v)
	case "link_bandwidth_mbps":
		v, err := num()
		if err != nil {
			return err
		}
		m.Link.Bandwidth = v * 1e6
	case "election_timeout_us":
		v, err := num()
		if err != nil {
			return err
		}
		m.Protocol.ElectionMin = sim.FromMicros(v)
	case "election_jitter_us":
		v, err := num()
		if err != nil {
			return err
		}
		m.Protocol.ElectionJitter = sim.FromMicros(v)
	case "heartbeat_us":
		v, err := num()
		if err != nil {
			return err
		}
		m.Protocol.Heartbeat = sim.FromMicros(v)
	case "rpc_timeout_us":
		v, err := num()
		if err != nil {
			return err
		}
		m.Protocol.RPCTimeout = sim.FromMicros(v)
	case "replica_vm":
		m.ReplicaVM = val
	case "run_ms":
		v, err := num()
		if err != nil {
			return err
		}
		m.Run = sim.FromMicros(v * 1000)
	case "propose_interval_us":
		v, err := num()
		if err != nil {
			return err
		}
		m.ProposeEvery = sim.FromMicros(v)
	case "spin_chunk_us":
		v, err := num()
		if err != nil {
			return err
		}
		m.SpinChunk = sim.FromMicros(v)
	default:
		return fmt.Errorf("unknown [cluster] key %q", key)
	}
	return nil
}

func faultKey(f *ManifestFault, key, val string) error {
	switch key {
	case "target":
		f.Target = val
	case "at_ms":
		v, err := strconv.ParseFloat(val, 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("at_ms: want a positive number, got %q", val)
		}
		f.At = sim.FromMicros(v * 1000)
	case "count":
		n, err := strconv.Atoi(val)
		if err != nil || n <= 0 {
			return fmt.Errorf("count: want a positive integer, got %q", val)
		}
		f.Count = n
	case "extra_us":
		v, err := strconv.ParseFloat(val, 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("extra_us: want a positive number, got %q", val)
		}
		f.Extra = sim.FromMicros(v)
	case "window_ms":
		v, err := strconv.ParseFloat(val, 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("window_ms: want a positive number, got %q", val)
		}
		f.Window = sim.FromMicros(v * 1000)
	default:
		return fmt.Errorf("unknown [fault] key %q", key)
	}
	return nil
}
