// Package cluster is the distributed trust workload running on top of
// the multi-node substrate: a Raft-lite consensus protocol replicating
// the hash-chained attestation ledger (tz.AttestLog) across one replica
// VM per node. It implements the parts of Raft the failover experiments
// exercise — randomized leader election, heartbeats, log replication
// with conflict rollback, RPC timeouts with exponential backoff and
// retry, and majority commit — while leaning on the ledger's hash chain
// for log consistency: two logs that agree on the hash at index i agree
// on everything up to i, so AppendEntries carries (prevIndex, prevHash)
// instead of (prevLogIndex, prevLogTerm).
//
// Determinism is load-bearing: every timeout is drawn from a
// sim.SeedStream-derived per-replica RNG (decoupled from node engine
// seeds), every message travels through the net.Fabric as engine events,
// and replicas only act inside events on their own node's engine — so
// the same seed elects the same leaders, loses the same messages, and
// produces a bit-identical protocol trace.
//
// Crash coupling: each replica carries an alive() probe wired (by the
// harness) to its hosting VM's hafnium state. A dead VM's replica drops
// incoming messages and lets its timers lapse without acting — the
// outage window the watchdog restart policy bounds — and rejoins with
// its persisted log and term when the VM returns.
package cluster

import (
	"fmt"
	"strings"

	"khsim/internal/metrics"
	"khsim/internal/net"
	"khsim/internal/sim"
	"khsim/internal/tz"
)

// Role is a replica's consensus role.
type Role int

// Replica roles.
const (
	Follower Role = iota
	Candidate
	Leader
)

func (r Role) String() string {
	switch r {
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return "follower"
	}
}

// Config parameterizes the protocol. All durations are simulated time.
type Config struct {
	// ElectionMin is the minimum election timeout; each arming adds a
	// uniform draw from [0, ElectionJitter) so replicas split their
	// candidacies (same seed, same split).
	ElectionMin    sim.Duration
	ElectionJitter sim.Duration
	// Heartbeat is the leader's AppendEntries interval.
	Heartbeat sim.Duration
	// RPCTimeout is the leader's per-follower retransmit timeout; each
	// consecutive unanswered retry doubles it up to MaxBackoffShift
	// doublings.
	RPCTimeout      sim.Duration
	MaxBackoffShift uint
	// MaxBatch caps entries shipped per AppendEntries.
	MaxBatch int
	// Seed derives the per-replica timeout RNGs.
	Seed uint64
}

// DefaultConfig returns timescales sized for a 50 µs-latency rack: 4–8 ms
// election timeouts over 800 µs heartbeats.
func DefaultConfig(seed uint64) Config {
	return Config{
		ElectionMin:     sim.FromMicros(4000),
		ElectionJitter:  sim.FromMicros(4000),
		Heartbeat:       sim.FromMicros(800),
		RPCTimeout:      sim.FromMicros(1500),
		MaxBackoffShift: 6,
		MaxBatch:        16,
		Seed:            seed,
	}
}

func (c Config) validate(nodes int) error {
	if nodes < 2 {
		return fmt.Errorf("cluster: replication needs at least 2 nodes, got %d", nodes)
	}
	if c.ElectionMin <= 0 || c.ElectionJitter <= 0 || c.Heartbeat <= 0 || c.RPCTimeout <= 0 {
		return fmt.Errorf("cluster: all protocol timeouts must be positive")
	}
	if c.ElectionMin < 2*c.Heartbeat {
		return fmt.Errorf("cluster: election timeout %v must be at least twice the heartbeat %v", c.ElectionMin, c.Heartbeat)
	}
	if c.MaxBatch <= 0 {
		return fmt.Errorf("cluster: MaxBatch must be positive")
	}
	return nil
}

// Wire message payloads. Sizes are modelled, not marshalled: the fabric
// charges Bytes, the payload rides as a Go value.

type voteReq struct {
	Term      uint64
	Candidate int
	LastIndex uint64
	LastTerm  uint64
}

type voteResp struct {
	Term    uint64
	Voter   int
	Granted bool
}

type appendReq struct {
	Term      uint64
	Leader    int
	PrevIndex uint64
	PrevHash  [32]byte
	Entries   []tz.AttestRecord
	Commit    uint64
}

type appendResp struct {
	Term    uint64
	From    int
	Success bool
	// Match is the last index known replicated on the follower when
	// Success; Hint is the follower's log length when not, letting the
	// leader jump nextIndex back instead of decrementing one at a time.
	Match uint64
	Hint  uint64
}

type proposeReq struct {
	Payload []byte
	// Forwarded bounds relay loops: a forwarded proposal that reaches
	// another non-leader is dropped, and the proposer's retry cadence
	// recovers it.
	Forwarded bool
}

func wireSize(payload any) int {
	switch p := payload.(type) {
	case voteReq:
		return 48
	case voteResp:
		return 24
	case appendReq:
		n := 96
		for _, e := range p.Entries {
			n += 48 + len(e.Payload)
		}
		return n
	case appendResp:
		return 40
	case proposeReq:
		return 32 + len(p.Payload)
	default:
		return 64
	}
}

// TraceRecord is one line of the deterministic merged protocol trace.
type TraceRecord struct {
	At    sim.Time
	Node  int
	Event string
}

// String renders the record as a trace line.
func (t TraceRecord) String() string {
	return fmt.Sprintf("%12.6fs n%d %s", t.At.Seconds(), t.Node, t.Event)
}

// Service is the replicated attestation ledger spanning one replica per
// node. Build with New, wire VM liveness with SetAlive, then Start.
type Service struct {
	cfg    Config
	fabric *net.Fabric
	reps   []*Replica

	started bool

	mElections *metrics.Counter
	mCommits   *metrics.Counter
	mProposals *metrics.Counter
	// Per-replica counts already pushed into the metrics counters; the
	// counts themselves live on the replicas (see Replica shards) so
	// protocol events never write Service state from node engines.
	elecFlushed, commFlushed, propFlushed uint64
}

// New builds the service over an attached fabric: one replica per node,
// each driven by that node's engine. Replicas start as followers with
// empty logs and always-alive hosts.
func New(fabric *net.Fabric, engines []*sim.Engine, cfg Config) (*Service, error) {
	if len(engines) != fabric.Nodes() {
		return nil, fmt.Errorf("cluster: %d engines for a %d-node fabric", len(engines), fabric.Nodes())
	}
	if err := cfg.validate(len(engines)); err != nil {
		return nil, err
	}
	s := &Service{cfg: cfg, fabric: fabric}
	// The timeout stream must not collide with node engine seeds (which
	// the machine layer also derives from the base seed), so the base is
	// mixed before deriving per-replica streams.
	stream := sim.NewSeedStream(cfg.Seed*0x9e3779b97f4a7c15 + 0xc1057e44)
	for i, eng := range engines {
		r := &Replica{
			id:    i,
			svc:   s,
			eng:   eng,
			rng:   stream.RNG(i),
			alive: func() bool { return true },
			log:   tz.NewAttestLog(),
			voted: -1,
			lead:  -1,
		}
		s.reps = append(s.reps, r)
	}
	return s, nil
}

// SetMetrics publishes protocol counters into a registry (typically the
// cluster-level one).
func (s *Service) SetMetrics(reg *metrics.Registry) {
	s.mElections = reg.Counter(metrics.K("cluster", "elections"))
	s.mCommits = reg.Counter(metrics.K("cluster", "committed"))
	s.mProposals = reg.Counter(metrics.K("cluster", "proposals"))
}

// SetAlive wires replica i's liveness probe — the harness points it at
// the hosting VM's state so a crashed VM silences its replica.
func (s *Service) SetAlive(i int, alive func() bool) {
	s.reps[i].alive = alive
}

// Start binds fabric handlers and arms every replica's election timer.
func (s *Service) Start() error {
	if s.started {
		return fmt.Errorf("cluster: service already started")
	}
	s.started = true
	for _, r := range s.reps {
		rep := r
		if err := s.fabric.Bind(net.NodeID(rep.id), rep.receive); err != nil {
			return err
		}
		rep.armElection()
	}
	return nil
}

// Replica returns replica i.
func (s *Service) Replica(i int) *Replica { return s.reps[i] }

// Replicas reports the cluster size.
func (s *Service) Replicas() int { return len(s.reps) }

// LeaderID reports the live leader of the highest term, or -1. With a
// healed cluster this is the one agreed leader; mid-election it can be
// -1 or a stale leader that has not yet learned of the new term.
func (s *Service) LeaderID() int {
	best, bestTerm := -1, uint64(0)
	for _, r := range s.reps {
		if r.role == Leader && r.alive() && r.term >= bestTerm {
			best, bestTerm = r.id, r.term
		}
	}
	return best
}

// Propose appends a payload to the replicated ledger via replica i: a
// leader appends locally, a follower forwards to its last known leader.
// It reports whether the proposal entered the protocol (not that it
// committed).
func (s *Service) Propose(i int, payload []byte) bool {
	return s.reps[i].propose(payload, false)
}

// ElectionTimeouts sums election-timeout firings across replicas.
func (s *Service) ElectionTimeouts() uint64 {
	var n uint64
	for _, r := range s.reps {
		n += r.timeouts
	}
	return n
}

// Logs returns every replica's ledger (aliased, not copied).
func (s *Service) Logs() []*tz.AttestLog {
	out := make([]*tz.AttestLog, len(s.reps))
	for i, r := range s.reps {
		out[i] = r.log
	}
	return out
}

// PrefixConsistent reports the ledger safety property across every
// replica pair.
func (s *Service) PrefixConsistent() bool {
	for i := 0; i < len(s.reps); i++ {
		for j := i + 1; j < len(s.reps); j++ {
			if !tz.PrefixConsistent(s.reps[i].log, s.reps[j].log) {
				return false
			}
		}
	}
	return true
}

// Trace returns the merged protocol trace in global firing order. Each
// replica records its lines into a private shard (so replicas never
// write shared state from their node engines — load-bearing under the
// cluster's parallel mode); the merge orders by timestamp, ties broken
// toward the lowest node id, then per-node append order. That is exactly
// the order the sequential multiplexer fires events in, so the merged
// trace is byte-identical whether the run was sequential or parallel.
func (s *Service) Trace() []TraceRecord {
	total := 0
	for _, r := range s.reps {
		total += len(r.trace)
	}
	out := make([]TraceRecord, 0, total)
	heads := make([]int, len(s.reps))
	for len(out) < total {
		best := -1
		for n, r := range s.reps {
			if heads[n] >= len(r.trace) {
				continue
			}
			if best < 0 || r.trace[heads[n]].At < s.reps[best].trace[heads[best]].At {
				best = n
			}
		}
		out = append(out, s.reps[best].trace[heads[best]])
		heads[best]++
	}
	return out
}

// FlushMetrics pushes the per-replica protocol counts accumulated since
// the last flush into the registry counters. Must be called from a
// single-threaded point (between windows or after the run); shard sums
// are order-independent so the counter values are deterministic.
func (s *Service) FlushMetrics() {
	if s.mElections == nil {
		return
	}
	var elec, comm, prop uint64
	for _, r := range s.reps {
		elec += r.elections
		comm += r.commits
		prop += r.proposals
	}
	s.mElections.Add(elec - s.elecFlushed)
	s.mCommits.Add(comm - s.commFlushed)
	s.mProposals.Add(prop - s.propFlushed)
	s.elecFlushed, s.commFlushed, s.propFlushed = elec, comm, prop
}

// TraceString renders the merged trace, one record per line — the
// byte-identical artifact the determinism gate compares across runs.
func (s *Service) TraceString() string {
	var b strings.Builder
	for _, t := range s.Trace() {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func (s *Service) tracef(node int, at sim.Time, format string, args ...any) {
	r := s.reps[node]
	r.trace = append(r.trace, TraceRecord{At: at, Node: node, Event: fmt.Sprintf(format, args...)})
}

func (s *Service) majority() int { return len(s.reps)/2 + 1 }

// Replica is one node's consensus participant.
type Replica struct {
	id    int
	svc   *Service
	eng   *sim.Engine
	rng   *sim.RNG
	alive func() bool

	log    *tz.AttestLog
	term   uint64
	voted  int // candidate voted for in term; -1 = none
	role   Role
	lead   int // last known leader; -1 = unknown
	commit uint64
	votes  int

	// Leader-only volatile state, rebuilt at election.
	next    []uint64
	match   []uint64
	backoff []uint
	retry   []sim.Event

	electionEv sim.Event
	hbEv       sim.Event

	timeouts uint64 // election-timeout firings (failover-bound metric)

	// Shards of the service-level trace and protocol counters. Written
	// only from events on this replica's own node engine — per-node
	// worker goroutines under the cluster's parallel mode — and merged
	// at single-threaded points (Service.Trace, Service.FlushMetrics).
	trace     []TraceRecord
	elections uint64
	commits   uint64
	proposals uint64
}

// ID reports the replica's node id.
func (r *Replica) ID() int { return r.id }

// Role reports the replica's current role.
func (r *Replica) Role() Role { return r.role }

// Term reports the replica's current term.
func (r *Replica) Term() uint64 { return r.term }

// Leader reports the replica's last known leader (-1 = unknown).
func (r *Replica) Leader() int { return r.lead }

// Commit reports the replica's commit index.
func (r *Replica) Commit() uint64 { return r.commit }

// Log returns the replica's ledger.
func (r *Replica) Log() *tz.AttestLog { return r.log }

// Timeouts reports how many election timeouts have fired on the replica.
func (r *Replica) Timeouts() uint64 { return r.timeouts }

func (r *Replica) lastTerm() uint64 {
	if rec, ok := r.log.At(r.log.Len()); ok {
		return rec.Term
	}
	return 0
}

func (r *Replica) send(to int, payload any) {
	// Fabric errors are configuration bugs, not runtime conditions;
	// losses are silent by design.
	if err := r.svc.fabric.Send(net.NodeID(r.id), net.NodeID(to), msgKind(payload), payload, wireSize(payload)); err != nil {
		panic(fmt.Sprintf("cluster: send %d->%d: %v", r.id, to, err))
	}
}

func msgKind(payload any) string {
	switch payload.(type) {
	case voteReq:
		return "vote-req"
	case voteResp:
		return "vote-resp"
	case appendReq:
		return "append"
	case appendResp:
		return "append-resp"
	case proposeReq:
		return "propose"
	default:
		return "?"
	}
}

// armElection (re)arms the randomized election timer.
func (r *Replica) armElection() {
	r.eng.Cancel(r.electionEv)
	d := r.svc.cfg.ElectionMin + r.rng.UniformDuration(0, r.svc.cfg.ElectionJitter)
	r.electionEv = r.eng.AfterNamed(d, "cluster.election", r.electionTimeout)
}

// electionTimeout fires when no leader traffic arrived for a full
// timeout: the replica stands for election. A dead VM's replica just
// rearms — it cannot campaign while down.
func (r *Replica) electionTimeout() {
	r.timeouts++
	if !r.alive() {
		r.armElection()
		return
	}
	if r.role == Leader {
		return // stale timer; leaders pace by heartbeat
	}
	r.term++
	r.role = Candidate
	r.voted = r.id
	r.lead = -1
	r.votes = 1
	r.elections++
	r.svc.tracef(r.id, r.eng.Now(), "election timeout: candidate term=%d last=(%d,t%d)", r.term, r.log.Len(), r.lastTerm())
	req := voteReq{Term: r.term, Candidate: r.id, LastIndex: r.log.Len(), LastTerm: r.lastTerm()}
	for _, p := range r.svc.reps {
		if p.id != r.id {
			r.send(p.id, req)
		}
	}
	r.armElection()
}

// stepDown adopts a higher term as a follower.
func (r *Replica) stepDown(term uint64) {
	if r.role == Leader {
		r.svc.tracef(r.id, r.eng.Now(), "step down: term %d -> %d", r.term, term)
		r.eng.Cancel(r.hbEv)
		for i := range r.retry {
			r.eng.Cancel(r.retry[i])
		}
	}
	r.term = term
	r.role = Follower
	r.voted = -1
	r.armElection()
}

// becomeLeader initializes leader state and immediately asserts the new
// term: a "leader elected" record is appended to the ledger (leadership
// changes are themselves attested, and the fresh-term entry is what the
// commit rule needs to finalize earlier terms' records), and the first
// heartbeat round ships it.
func (r *Replica) becomeLeader() {
	n := len(r.svc.reps)
	r.role = Leader
	r.lead = r.id
	r.next = make([]uint64, n)
	r.match = make([]uint64, n)
	r.backoff = make([]uint, n)
	r.retry = make([]sim.Event, n)
	for i := range r.next {
		r.next[i] = r.log.Len() + 1
	}
	r.eng.Cancel(r.electionEv)
	r.log.Append(r.term, []byte(fmt.Sprintf("leader n%d term %d", r.id, r.term)))
	r.svc.tracef(r.id, r.eng.Now(), "leader term=%d log=%d", r.term, r.log.Len())
	r.heartbeat()
}

// heartbeat ships AppendEntries to every peer and rearms the ticker. It
// keeps ticking while the hosting VM is down (doing nothing) so a
// restarted stale leader resumes asserting its term and is deposed by
// the higher-term responses.
func (r *Replica) heartbeat() {
	if r.role != Leader {
		return
	}
	if r.alive() {
		for _, p := range r.svc.reps {
			if p.id != r.id {
				r.sendAppend(p.id)
			}
		}
	}
	r.hbEv = r.eng.AfterNamed(r.svc.cfg.Heartbeat, "cluster.heartbeat", r.heartbeat)
}

// sendAppend ships the suffix peer p is missing (or a bare heartbeat)
// and arms the backed-off retransmit timer.
func (r *Replica) sendAppend(p int) {
	prev := r.next[p] - 1
	prevHash, ok := r.log.HashAt(prev)
	if !ok {
		// next regressed below 1 would be a protocol bug.
		panic(fmt.Sprintf("cluster: leader n%d has no hash at %d for peer %d", r.id, prev, p))
	}
	to := prev + uint64(r.svc.cfg.MaxBatch)
	req := appendReq{
		Term:      r.term,
		Leader:    r.id,
		PrevIndex: prev,
		PrevHash:  prevHash,
		Entries:   r.log.Slice(prev, to),
		Commit:    r.commit,
	}
	r.send(p, req)
	r.armRetry(p)
}

// armRetry schedules the retransmit for peer p at the backed-off RPC
// timeout: RPCTimeout << backoff, capped at MaxBackoffShift doublings.
func (r *Replica) armRetry(p int) {
	r.eng.Cancel(r.retry[p])
	shift := r.backoff[p]
	if shift > r.svc.cfg.MaxBackoffShift {
		shift = r.svc.cfg.MaxBackoffShift
	}
	d := r.svc.cfg.RPCTimeout << shift
	pid := p
	r.retry[p] = r.eng.AfterNamed(d, "cluster.rpc-retry", func() { r.retryTimeout(pid) })
}

// retryTimeout fires when peer p never acknowledged: back off and
// retransmit. An unreachable peer (partitioned, dead VM) settles at the
// capped interval instead of flooding the fabric.
func (r *Replica) retryTimeout(p int) {
	if r.role != Leader || !r.alive() {
		return
	}
	if r.backoff[p] < r.svc.cfg.MaxBackoffShift {
		r.backoff[p]++
	}
	r.sendAppend(p)
}

// receive dispatches a fabric delivery. A dead VM receives nothing.
func (r *Replica) receive(m net.Message) {
	if !r.alive() {
		return
	}
	switch p := m.Payload.(type) {
	case voteReq:
		r.onVoteReq(p)
	case voteResp:
		r.onVoteResp(p)
	case appendReq:
		r.onAppend(p)
	case appendResp:
		r.onAppendResp(p)
	case proposeReq:
		r.propose(p.Payload, p.Forwarded)
	}
}

func (r *Replica) onVoteReq(q voteReq) {
	if q.Term > r.term {
		r.stepDown(q.Term)
	}
	granted := false
	if q.Term == r.term && (r.voted == -1 || r.voted == q.Candidate) {
		// Election safety: only vote for candidates whose log is at
		// least as up-to-date, so a committed record can never be lost
		// to a stale winner.
		upToDate := q.LastTerm > r.lastTerm() ||
			(q.LastTerm == r.lastTerm() && q.LastIndex >= r.log.Len())
		if upToDate {
			granted = true
			r.voted = q.Candidate
			r.armElection()
			r.svc.tracef(r.id, r.eng.Now(), "vote for n%d term=%d", q.Candidate, q.Term)
		}
	}
	r.send(q.Candidate, voteResp{Term: r.term, Voter: r.id, Granted: granted})
}

func (r *Replica) onVoteResp(q voteResp) {
	if q.Term > r.term {
		r.stepDown(q.Term)
		return
	}
	if r.role != Candidate || q.Term != r.term || !q.Granted {
		return
	}
	r.votes++
	if r.votes >= r.svc.majority() {
		r.becomeLeader()
	}
}

func (r *Replica) onAppend(q appendReq) {
	if q.Term < r.term {
		r.send(q.Leader, appendResp{Term: r.term, From: r.id, Success: false, Hint: r.log.Len()})
		return
	}
	if q.Term > r.term || r.role != Follower {
		r.stepDown(q.Term)
	}
	r.lead = q.Leader
	r.armElection()
	// Consistency check: our chain hash at PrevIndex must match the
	// leader's. The hash chain makes this a complete prefix check.
	ourHash, have := r.log.HashAt(q.PrevIndex)
	if !have || ourHash != q.PrevHash {
		hint := r.log.Len()
		if have {
			// We hold a divergent record at PrevIndex; roll the leader
			// back past it.
			hint = q.PrevIndex - 1
		}
		r.send(q.Leader, appendResp{Term: r.term, From: r.id, Success: false, Hint: hint})
		return
	}
	idx := q.PrevIndex
	for _, e := range q.Entries {
		idx = e.Index
		if h, ok := r.log.HashAt(e.Index); ok && h == e.Hash {
			continue // already replicated (a retransmit overlap)
		}
		// A differing record at this index is an uncommitted divergent
		// suffix from a deposed leader: overwrite it.
		r.log.TruncateFrom(e.Index)
		if err := r.log.AppendRecord(e); err != nil {
			panic(fmt.Sprintf("cluster: replica n%d: %v", r.id, err))
		}
	}
	if q.Commit > r.commit {
		c := q.Commit
		if l := r.log.Len(); c > l {
			c = l
		}
		if c > r.commit {
			r.commit = c
			r.svc.tracef(r.id, r.eng.Now(), "commit=%d head=%x", r.commit, shortHead(r.log))
		}
	}
	r.send(q.Leader, appendResp{Term: r.term, From: r.id, Success: true, Match: idx})
}

func (r *Replica) onAppendResp(q appendResp) {
	if q.Term > r.term {
		r.stepDown(q.Term)
		return
	}
	if r.role != Leader || q.Term != r.term {
		return
	}
	p := q.From
	r.backoff[p] = 0
	r.eng.Cancel(r.retry[p])
	if !q.Success {
		// Roll nextIndex back (the hint jumps straight to the
		// follower's log end) and retransmit immediately.
		nxt := r.next[p] - 1
		if q.Hint+1 < nxt {
			nxt = q.Hint + 1
		}
		if nxt < 1 {
			nxt = 1
		}
		r.next[p] = nxt
		r.sendAppend(p)
		return
	}
	if q.Match > r.match[p] {
		r.match[p] = q.Match
	}
	r.next[p] = r.match[p] + 1
	r.advanceCommit()
	if r.next[p] <= r.log.Len() {
		r.sendAppend(p) // keep streaming a catch-up without waiting for the tick
	}
}

// advanceCommit moves the commit index over every record replicated on a
// majority, restricted (as in Raft) to records of the current term.
func (r *Replica) advanceCommit() {
	for i := r.commit + 1; i <= r.log.Len(); i++ {
		n := 1 // self
		for p, m := range r.match {
			if p != r.id && m >= i {
				n++
			}
		}
		if n < r.svc.majority() {
			break
		}
		rec, _ := r.log.At(i)
		if rec.Term != r.term {
			continue
		}
		r.commit = i
		r.commits++
		r.svc.tracef(r.id, r.eng.Now(), "commit=%d head=%x", r.commit, shortHead(r.log))
	}
}

// propose enters a payload into the protocol: leaders append, followers
// forward once to their last known leader.
func (r *Replica) propose(payload []byte, forwarded bool) bool {
	if !r.alive() {
		return false
	}
	if r.role == Leader {
		r.log.Append(r.term, payload)
		r.proposals++
		return true
	}
	if forwarded || r.lead < 0 || r.lead == r.id {
		return false
	}
	r.send(r.lead, proposeReq{Payload: payload, Forwarded: true})
	return true
}

func shortHead(l *tz.AttestLog) []byte {
	h := l.Head()
	return h[:4]
}
