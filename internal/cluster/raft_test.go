package cluster

import (
	"fmt"
	"strings"
	"testing"

	"khsim/internal/net"
	"khsim/internal/sim"
)

// testRig is a bare replication cluster: engines + fabric + service, no
// machine stacks underneath (protocol-level tests).
type testRig struct {
	engines []*sim.Engine
	fabric  *net.Fabric
	svc     *Service
	alive   []bool
}

func newTestRig(t *testing.T, n int, seed uint64) *testRig {
	t.Helper()
	f, err := net.NewFabric(n, net.DefaultLink())
	if err != nil {
		t.Fatal(err)
	}
	r := &testRig{fabric: f, alive: make([]bool, n)}
	for i := 0; i < n; i++ {
		eng := sim.NewEngine(uint64(i) + 100)
		r.engines = append(r.engines, eng)
		if err := f.Attach(net.NodeID(i), eng); err != nil {
			t.Fatal(err)
		}
		r.alive[i] = true
	}
	svc, err := New(f, r.engines, DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	r.svc = svc
	for i := 0; i < n; i++ {
		id := i
		svc.SetAlive(id, func() bool { return r.alive[id] })
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	return r
}

// run advances all engines in global timestamp order until t.
func (r *testRig) run(t sim.Duration) {
	until := r.engines[0].Now().Add(t)
	for {
		best, bt := -1, sim.Time(0)
		for i, e := range r.engines {
			if at, ok := e.NextAt(); ok && (best < 0 || at < bt) {
				best, bt = i, at
			}
		}
		if best < 0 || bt > until {
			break
		}
		r.engines[best].Step()
	}
	for _, e := range r.engines {
		e.Run(until)
	}
}

func (r *testRig) leaders() []int {
	var out []int
	for i := 0; i < r.svc.Replicas(); i++ {
		if r.svc.Replica(i).Role() == Leader {
			out = append(out, i)
		}
	}
	return out
}

func TestElectionConvergesToOneLeader(t *testing.T) {
	r := newTestRig(t, 3, 7)
	r.run(sim.FromMicros(50000)) // many election windows
	ls := r.leaders()
	if len(ls) != 1 {
		t.Fatalf("leaders = %v, want exactly one", ls)
	}
	if r.svc.LeaderID() != ls[0] {
		t.Fatalf("LeaderID = %d, roles say %v", r.svc.LeaderID(), ls)
	}
	// The leadership change itself is attested: every log starts with the
	// leader-elected record and all replicas agree.
	for i, l := range r.svc.Logs() {
		if l.Len() == 0 {
			t.Fatalf("replica %d has an empty ledger", i)
		}
		rec, _ := l.At(1)
		if !strings.HasPrefix(string(rec.Payload), "leader n") {
			t.Fatalf("replica %d first record = %q", i, rec.Payload)
		}
	}
	if !r.svc.PrefixConsistent() {
		t.Fatal("ledgers diverged with no faults")
	}
}

func TestReplicationCommitsProposals(t *testing.T) {
	r := newTestRig(t, 3, 11)
	r.run(sim.FromMicros(20000))
	lead := r.svc.LeaderID()
	if lead < 0 {
		t.Fatal("no leader")
	}
	// Propose through a follower: the proposal forwards to the leader.
	follower := (lead + 1) % 3
	for k := 0; k < 5; k++ {
		payload := fmt.Sprintf("payload %d", k)
		r.engines[follower].ScheduleNamed(r.engines[follower].Now().Add(sim.FromMicros(float64(k+1))), "propose", func() {
			r.svc.Propose(follower, []byte(payload))
		})
	}
	r.run(sim.FromMicros(20000))
	for i := 0; i < 3; i++ {
		rep := r.svc.Replica(i)
		if rep.Commit() != rep.Log().Len() || rep.Log().Len() < 6 {
			t.Fatalf("replica %d: commit=%d len=%d, want 6 committed", i, rep.Commit(), rep.Log().Len())
		}
		if err := rep.Log().Verify(); err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
	}
	if !r.svc.PrefixConsistent() {
		t.Fatal("ledgers diverged")
	}
}

func TestDeadLeaderFailsOverAndRejoins(t *testing.T) {
	r := newTestRig(t, 3, 13)
	r.run(sim.FromMicros(20000))
	old := r.svc.LeaderID()
	if old < 0 {
		t.Fatal("no leader")
	}
	oldTerm := r.svc.Replica(old).Term()
	r.alive[old] = false
	r.run(sim.FromMicros(30000))
	fresh := r.svc.LeaderID()
	if fresh < 0 || fresh == old {
		t.Fatalf("no failover: leader %d -> %d", old, fresh)
	}
	if r.svc.Replica(fresh).Term() <= oldTerm {
		t.Fatalf("new leader term %d not above old %d", r.svc.Replica(fresh).Term(), oldTerm)
	}
	// Revive the old leader: its stale heartbeats must get it deposed and
	// caught up, not split the cluster.
	r.alive[old] = true
	r.run(sim.FromMicros(30000))
	if got := r.svc.LeaderID(); got != fresh {
		t.Fatalf("leadership moved again after rejoin: %d", got)
	}
	if r.svc.Replica(old).Role() == Leader {
		t.Fatal("stale leader was not deposed")
	}
	if !r.svc.PrefixConsistent() {
		t.Fatal("ledgers diverged across failover")
	}
	if r.svc.Replica(old).Log().Head() != r.svc.Replica(fresh).Log().Head() {
		t.Fatal("rejoined replica did not catch up")
	}
}

func TestPartitionedFollowerCatchesUp(t *testing.T) {
	r := newTestRig(t, 3, 17)
	r.run(sim.FromMicros(20000))
	lead := r.svc.LeaderID()
	if lead < 0 {
		t.Fatal("no leader")
	}
	victim := (lead + 1) % 3
	r.fabric.Partition(net.NodeID(victim))
	// Keep committing while the follower is cut off.
	for k := 0; k < 8; k++ {
		payload := fmt.Sprintf("during-partition %d", k)
		r.engines[lead].ScheduleNamed(r.engines[lead].Now().Add(sim.FromMicros(float64(100*(k+1)))), "propose", func() {
			r.svc.Propose(lead, []byte(payload))
		})
	}
	r.run(sim.FromMicros(30000))
	behind := r.svc.Replica(victim).Log().Len()
	ahead := r.svc.Replica(lead).Log().Len()
	if behind >= ahead {
		t.Fatalf("partitioned replica kept up: %d vs %d", behind, ahead)
	}
	r.fabric.Heal(net.NodeID(victim))
	r.run(sim.FromMicros(30000))
	if got := r.svc.Replica(victim).Log().Head(); got != r.svc.Replica(lead).Log().Head() {
		t.Fatal("healed replica did not catch up")
	}
	if r.svc.Replica(victim).Commit() != r.svc.Replica(victim).Log().Len() {
		t.Fatal("healed replica's commit lags its log")
	}
	if !r.svc.PrefixConsistent() {
		t.Fatal("ledgers diverged across the partition")
	}
}

func TestProtocolTraceDeterministic(t *testing.T) {
	run := func() string {
		r := newTestRig(t, 3, 23)
		r.run(sim.FromMicros(15000))
		old := r.svc.LeaderID()
		if old >= 0 {
			r.alive[old] = false
		}
		r.run(sim.FromMicros(25000))
		if old >= 0 {
			r.alive[old] = true
		}
		r.run(sim.FromMicros(20000))
		return r.svc.TraceString()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed protocol traces differ:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	if !strings.Contains(a, "leader term=") || !strings.Contains(a, "step down") {
		t.Fatalf("trace missing expected records:\n%s", a)
	}
}

func TestConfigValidation(t *testing.T) {
	f, _ := net.NewFabric(3, net.DefaultLink())
	engines := []*sim.Engine{sim.NewEngine(1), sim.NewEngine(2), sim.NewEngine(3)}
	for i, e := range engines {
		f.Attach(net.NodeID(i), e)
	}
	bad := DefaultConfig(1)
	bad.ElectionMin = bad.Heartbeat // must be >= 2x heartbeat
	if _, err := New(f, engines, bad); err == nil {
		t.Fatal("accepted election timeout below 2x heartbeat")
	}
	if _, err := New(f, engines[:2], DefaultConfig(1)); err == nil {
		t.Fatal("accepted engine count mismatch")
	}
	one, _ := net.NewFabric(1, net.DefaultLink())
	one.Attach(0, engines[0])
	if _, err := New(one, engines[:1], DefaultConfig(1)); err == nil {
		t.Fatal("accepted single-node cluster")
	}
}
