// Command selfish regenerates the paper's Figures 4–6: selfish-detour
// noise traces for the three execution configurations. Output is a
// summary line per configuration plus optional per-detour TSV scatter
// files suitable for plotting.
//
// Usage:
//
//	selfish [-config native|kitten|linux|all] [-seconds N] [-seed S] [-outdir DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"khsim/internal/harness"
	"khsim/internal/sim"
)

func main() {
	cfgName := flag.String("config", "all", "configuration: native, kitten, linux or all")
	seconds := flag.Float64("seconds", 30, "spin time in simulated seconds")
	seed := flag.Uint64("seed", 42, "simulation seed")
	outdir := flag.String("outdir", "", "directory for per-detour TSV scatter files (optional)")
	flag.Parse()

	var configs []harness.Config
	switch *cfgName {
	case "native":
		configs = []harness.Config{harness.Native}
	case "kitten":
		configs = []harness.Config{harness.KittenVM}
	case "linux":
		configs = []harness.Config{harness.LinuxVM}
	case "all":
		configs = harness.Configs
	default:
		fmt.Fprintf(os.Stderr, "selfish: unknown config %q\n", *cfgName)
		os.Exit(2)
	}

	figure := map[harness.Config]string{
		harness.Native:   "fig4",
		harness.KittenVM: "fig5",
		harness.LinuxVM:  "fig6",
	}
	for _, cfg := range configs {
		res, err := harness.RunSelfish(cfg, *seed, sim.FromSeconds(*seconds))
		if err != nil {
			fmt.Fprintf(os.Stderr, "selfish: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s  %s\n", figure[cfg], res.Summary())
		if *outdir != "" {
			if err := os.MkdirAll(*outdir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "selfish: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*outdir, figure[cfg]+"-"+cfg.String()+".tsv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "selfish: %v\n", err)
				os.Exit(1)
			}
			if err := res.WriteTSV(f); err != nil {
				fmt.Fprintf(os.Stderr, "selfish: %v\n", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("        wrote %s (%d detours)\n", path, res.Count())
		}
	}
}
