// Command docgate enforces doc comments on exported identifiers. It
// parses the packages named on the command line (non-test files only) and
// fails listing every exported type, function, method, constant and
// variable that lacks a doc comment. `make lint` runs it over the core
// simulator packages so the godoc surface cannot silently drift.
//
// Grouped declarations follow godoc convention: a doc comment on the
// `const (...)` / `var (...)` block covers every spec inside it, and a
// comment on an individual spec covers that spec.
//
// With -arch FILE it additionally enforces the architecture doc's
// package table: every first-level package directory under -internal
// (default "internal") that contains Go code anywhere in its tree must
// be mentioned in FILE as `internal/<name>`. A package added without a
// row in ARCHITECTURE.md fails `make lint`, so the doc cannot silently
// fall behind the tree.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// missing is one undocumented exported identifier.
type missing struct {
	pos  token.Position
	what string
	name string
}

func checkDir(fset *token.FileSet, dir string) ([]missing, error) {
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []missing
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			out = append(out, checkFile(fset, file)...)
		}
	}
	return out, nil
}

func checkFile(fset *token.FileSet, file *ast.File) []missing {
	var out []missing
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			what := "function"
			name := d.Name.Name
			if d.Recv != nil && len(d.Recv.List) == 1 {
				// Only methods on exported receivers are godoc surface.
				recv := receiverTypeName(d.Recv.List[0].Type)
				if recv == "" || !ast.IsExported(recv) {
					continue
				}
				what = "method"
				name = recv + "." + name
			}
			out = append(out, missing{fset.Position(d.Pos()), what, name})
		case *ast.GenDecl:
			blockDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && !blockDoc && s.Doc == nil {
						out = append(out, missing{fset.Position(s.Pos()), "type", s.Name.Name})
					}
				case *ast.ValueSpec:
					if blockDoc || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							kind := "var"
							if d.Tok == token.CONST {
								kind = "const"
							}
							out = append(out, missing{fset.Position(n.Pos()), kind, n.Name})
						}
					}
				}
			}
		}
	}
	return out
}

// receiverTypeName unwraps a method receiver type down to its base
// identifier: *T, T, and generic T[P] all yield "T".
func receiverTypeName(t ast.Expr) string {
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// hasGoCode reports whether dir (or any subdirectory) holds a non-test
// Go source file.
func hasGoCode(dir string) bool {
	found := false
	filepath.Walk(dir, func(path string, fi os.FileInfo, err error) error {
		if err != nil || found {
			return filepath.SkipDir
		}
		if !fi.IsDir() && strings.HasSuffix(fi.Name(), ".go") && !strings.HasSuffix(fi.Name(), "_test.go") {
			found = true
		}
		return nil
	})
	return found
}

// checkArch enforces the architecture doc's package table: every
// first-level package directory under root with Go code in its tree
// must appear in the doc as `internal/<name>`.
func checkArch(archPath, root string) []string {
	doc, err := os.ReadFile(archPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docgate:", err)
		os.Exit(2)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docgate:", err)
		os.Exit(2)
	}
	var absent []string
	for _, e := range entries {
		if !e.IsDir() || !hasGoCode(filepath.Join(root, e.Name())) {
			continue
		}
		if !strings.Contains(string(doc), "internal/"+e.Name()) {
			absent = append(absent, "internal/"+e.Name())
		}
	}
	return absent
}

func main() {
	arch := flag.String("arch", "", "architecture doc whose package table must cover every -internal package")
	internalRoot := flag.String("internal", "internal", "package root scanned for the -arch table check")
	flag.Parse()
	if *arch == "" && flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: docgate [-arch FILE [-internal DIR]] [DIR...]")
		os.Exit(2)
	}
	fset := token.NewFileSet()
	var all []missing
	for _, dir := range flag.Args() {
		ms, err := checkDir(fset, filepath.Clean(dir))
		if err != nil {
			fmt.Fprintln(os.Stderr, "docgate:", err)
			os.Exit(2)
		}
		all = append(all, ms...)
	}
	failed := false
	if len(all) > 0 {
		for _, m := range all {
			fmt.Fprintf(os.Stderr, "%s: undocumented exported %s %s\n", m.pos, m.what, m.name)
		}
		fmt.Fprintf(os.Stderr, "docgate: %d undocumented exported identifiers\n", len(all))
		failed = true
	}
	if *arch != "" {
		if absent := checkArch(*arch, *internalRoot); len(absent) > 0 {
			for _, pkg := range absent {
				fmt.Fprintf(os.Stderr, "%s: package %s missing from the package table\n", *arch, pkg)
			}
			fmt.Fprintf(os.Stderr, "docgate: %d packages absent from %s\n", len(absent), *arch)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("docgate: ok")
}
