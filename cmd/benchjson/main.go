// Command benchjson measures discrete-event engine throughput on eight
// representative simulator scenarios and records the results as
// machine-readable JSON (BENCH_sim.json at the repo root; `make bench`).
//
// Each scenario is built, warmed up, and then measured over a fixed window
// of simulated time on a single goroutine:
//
//	selfish          native Kitten, chunked selfish-detour spin (50 µs
//	                 chunks): the engine-dominated schedule/fire hot path.
//	stream           STREAM triad in a Kitten secondary VM under a Kitten
//	                 primary: the world-switch + tick + phase mix.
//	fault-storm-4vm  four VMs (primary + three crashing/restarting
//	                 victims) under the deterministic fault injector.
//	cluster-failover the 3-node replicated-attestation failover
//	                 experiment, measured end to end (no warmup; the
//	                 whole run including construction is the window).
//	snapshot-fork    the whole-node snapshot/fork hot path: "events" are
//	                 Node.Fork calls (full copy-on-write restores), so
//	                 ns/event reads as ns/fork. The file also carries a
//	                 "snapshot-fork" comparison block pinning fork cost
//	                 against cold stack construction; -check requires
//	                 the cold boot to stay ≥ 10× a fork.
//	migration        the live VM migration sweep (3-node cluster, pre-copy
//	                 + stop-and-copy over the fabric) measured end to end.
//	                 The file carries a "migration" block with per-cell
//	                 downtime vs budget (downtime is simulated time, so
//	                 the budget gate is machine-independent); -check
//	                 requires every cell to stay under budget.
//	cluster-parallel the failover workload with dense spin chunking at 4
//	                 and 8 nodes, run sequential THEN parallel with the
//	                 same seed in one process. The run itself enforces
//	                 byte-identical artifacts and equal event counts
//	                 between modes; the file carries a "cluster-parallel"
//	                 block recording both modes' events/sec and the
//	                 speedup per rack size. -check gates the 8-node
//	                 speedup by host width: ≥ 2× on ≥ 8 CPUs, ≥ 1.2× on
//	                 ≥ 4; narrower hosts (including a 1-CPU container,
//	                 where conservative windowing has no cores to use)
//	                 enforce only the determinism identity.
//	serving          the multi-tenant ephemeral-VM serving sweep (both
//	                 primary kernels across every arrival rate), measured
//	                 end to end. The run itself enforces byte-identical
//	                 same-seed artifacts; the file carries a "serving"
//	                 block with the p50/p99/p999 latency-vs-rate table
//	                 and the warm-vs-cold prepare means. -check requires
//	                 the warm fork to beat the cold boot (the
//	                 environment-reuse win; simulated time, so the gate
//	                 is machine-independent).
//
// Reported per scenario: ns/event (wall nanoseconds per simulation event,
// best of -reps), events/sec, allocs/event (Go heap allocations per event
// in the measured steady-state window), and the deterministic event count.
//
// Modes:
//
//	-out FILE     run and write FILE, preserving any "baseline" block the
//	              existing FILE carries (the pre-optimization trajectory).
//	-record-baseline LABEL
//	              additionally store this run as the new baseline block.
//	-check FILE   run and compare against FILE's committed scenario
//	              numbers; exit non-zero on a regression. Used by the CI
//	              bench job. Three gates: event counts must match exactly
//	              (machine-independent determinism), allocs/event must not
//	              grow materially, and ns/event must not regress beyond
//	              -tolerance (default 0.15 = 15%) after normalizing the
//	              committed numbers by the ratio of a raw-CPU calibration
//	              loop, so the gate survives CI runners of a different
//	              speed class than the machine that recorded the file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"time"

	"khsim/internal/cluster"
	"khsim/internal/core"
	"khsim/internal/faults"
	"khsim/internal/harness"
	"khsim/internal/kitten"
	"khsim/internal/noise"
	"khsim/internal/serve"
	"khsim/internal/sim"
	"khsim/internal/workload"
)

// ScenarioResult is one scenario's measured numbers.
type ScenarioResult struct {
	NsPerEvent     float64 `json:"ns_per_event"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	Events         uint64  `json:"events"`
	SimSeconds     float64 `json:"sim_seconds"`
}

// ForkResult compares the warm snapshot-fork path against cold stack
// construction: ns and allocs per Node.Fork (a full whole-node restore,
// copy-on-write under the stage-2 tables) versus ns per cold build+boot
// of the same stack. The fork gate requires the speedup to stay ≥ 10×.
type ForkResult struct {
	NsPerFork      float64 `json:"ns_per_fork"`
	AllocsPerFork  float64 `json:"allocs_per_fork"`
	NsPerColdBoot  float64 `json:"ns_per_cold_boot"`
	ColdOverFork   float64 `json:"cold_boot_over_fork"`
	Forks          uint64  `json:"forks"`
	ColdBootsTimed uint64  `json:"cold_boots_timed"`
}

// MigrationCellResult is one live-migration cell's gate numbers: the
// measured stop-and-copy downtime against its budget. Downtime is pure
// simulated time — machine-independent — so the budget is a fixed
// function of the working set (2× the ideal wire time for the dirty set
// at 1 GB/s, plus 1 ms of handshake slack), and the under-budget bit is
// a hard determinism-backed gate, not a wall-clock heuristic.
type MigrationCellResult struct {
	WorkingSetPages int    `json:"working_set_pages"`
	Kill            bool   `json:"kill"`
	DowntimeNs      int64  `json:"downtime_ns"`
	BudgetNs        int64  `json:"budget_ns"`
	BytesShipped    uint64 `json:"bytes_shipped"`
	Rounds          int    `json:"rounds"`
	Outcome         string `json:"outcome"`
	UnderBudget     bool   `json:"downtime_under_budget"`
}

// MigrationResult is the BENCH file's migration block: the downtime-vs-
// working-set sweep plus the mid-transfer-kill cell.
type MigrationResult struct {
	Cells []MigrationCellResult `json:"cells"`
}

// ParallelCell is one rack size's sequential-vs-parallel comparison:
// same seed, same workload, both execution modes in one process, with
// byte-identical artifacts enforced before the numbers are recorded.
type ParallelCell struct {
	Nodes           int     `json:"nodes"`
	SeqEventsPerSec float64 `json:"seq_events_per_sec"`
	ParEventsPerSec float64 `json:"par_events_per_sec"`
	Speedup         float64 `json:"speedup"`
	Events          uint64  `json:"events"`
}

// ParallelResult is the BENCH file's cluster-parallel block. CPUs pins
// the host width the speedups were measured on, since conservative
// windowing can only buy wall-clock time when there are cores to spread
// the node engines across.
type ParallelResult struct {
	CPUs  int            `json:"cpus"`
	Cells []ParallelCell `json:"cells"`
}

// ServingCellResult is one (primary kernel, arrival rate) cell of the
// ephemeral-VM serving sweep: admission-to-completion latency
// percentiles (pure simulated time, machine-independent) and the
// prepare-path split the reuse gate compares.
type ServingCellResult struct {
	Primary        string  `json:"primary"`
	Rate           float64 `json:"rate_jobs_per_sec"`
	Completed      int     `json:"completed"`
	P50US          float64 `json:"p50_us"`
	P99US          float64 `json:"p99_us"`
	P999US         float64 `json:"p999_us"`
	WarmPrepares   int     `json:"warm_prepares"`
	ColdPrepares   int     `json:"cold_prepares"`
	MeanWarmPrepUS float64 `json:"mean_warm_prep_us"`
	MeanColdPrepUS float64 `json:"mean_cold_prep_us"`
}

// ServingResult is the BENCH file's serving block: the latency-vs-rate
// table for both primary kernels plus the sweep-wide prepare means the
// reuse-win gate (-check: warm fork must beat cold boot) compares.
type ServingResult struct {
	Cells          []ServingCellResult `json:"cells"`
	MeanWarmPrepUS float64             `json:"mean_warm_prep_us"`
	MeanColdPrepUS float64             `json:"mean_cold_prep_us"`
	WarmOverCold   float64             `json:"cold_prep_over_warm"`
}

// Baseline is a pinned historical run kept for trajectory comparison.
type Baseline struct {
	Label     string                    `json:"label"`
	Scenarios map[string]ScenarioResult `json:"scenarios"`
}

// File is the BENCH_sim.json schema.
type File struct {
	Schema string `json:"schema"`
	Go     string `json:"go"`
	Note   string `json:"note"`
	// CalibNsPerOp is the recording machine's raw-CPU calibration number
	// (see calibrate); -check scales committed ns/event by the ratio of
	// the checking machine's calibration to this.
	CalibNsPerOp float64                   `json:"calib_ns_per_op,omitempty"`
	Baseline     *Baseline                 `json:"baseline,omitempty"`
	Fork         *ForkResult               `json:"snapshot-fork,omitempty"`
	Migration    *MigrationResult          `json:"migration,omitempty"`
	Parallel     *ParallelResult           `json:"cluster-parallel,omitempty"`
	Serving      *ServingResult            `json:"serving,omitempty"`
	Scenarios    map[string]ScenarioResult `json:"scenarios"`
}

// calibOps is the iteration count of the calibration loop (~100 ms).
const calibOps = 1 << 27

var calibSink uint64

// calibrate measures raw single-core integer throughput with a xorshift
// loop that involves no simulator code at all. Because it is independent
// of the engine, a genuine engine regression cannot hide behind it; it
// only absorbs whole-machine speed differences between the recording and
// checking hosts.
func calibrate() float64 {
	best := math.MaxFloat64
	for r := 0; r < 3; r++ {
		x := uint64(0x9E3779B97F4A7C15)
		t0 := time.Now()
		for i := 0; i < calibOps; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		calibSink += x
		if ns := float64(time.Since(t0).Nanoseconds()) / calibOps; ns < best {
			best = ns
		}
	}
	return best
}

// measure is one measured window.
type measure struct {
	events uint64
	allocs uint64
	wall   time.Duration
	simDur sim.Duration
}

func (m measure) result() ScenarioResult {
	r := ScenarioResult{Events: m.events, SimSeconds: m.simDur.Seconds()}
	if m.events > 0 {
		r.NsPerEvent = float64(m.wall.Nanoseconds()) / float64(m.events)
		r.AllocsPerEvent = float64(m.allocs) / float64(m.events)
	}
	if s := m.wall.Seconds(); s > 0 {
		r.EventsPerSec = float64(m.events) / s
	}
	return r
}

// measureWindow advances the engine-driving run function by measureDur of
// simulated time, recording wall time, fired events and heap allocations.
func measureWindow(eng *sim.Engine, run func(d sim.Duration), measureDur sim.Duration) measure {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	f0 := eng.Fired()
	t0 := time.Now()
	run(measureDur)
	wall := time.Since(t0)
	runtime.ReadMemStats(&m1)
	return measure{
		events: eng.Fired() - f0,
		allocs: m1.Mallocs - m0.Mallocs,
		wall:   wall,
		simDur: measureDur,
	}
}

// selfishScenario: native Kitten with a chunked selfish-detour spin. Each
// 50 µs chunk is one schedule+fire round trip, so the engine hot path
// dominates; the 1 s warmup takes the event pool and result buffers to
// steady state before the window opens.
func selfishScenario() (measure, error) {
	n, err := core.NewNativeNode(7, kitten.Params{})
	if err != nil {
		return measure{}, err
	}
	s := noise.NewSelfish("bench", sim.FromSeconds(30))
	s.ChunkTime = sim.FromMicros(50)
	if _, err := n.Kernel.Spawn(s.Name(), 0, s); err != nil {
		return measure{}, err
	}
	n.Run(sim.FromSeconds(1)) // warmup
	return measureWindow(n.Machine.Engine, n.Run, sim.FromSeconds(8)), nil
}

const streamManifest = `
[vm primary]
class = primary
vcpus = 4
memory_mb = 256

[vm job]
class = secondary
vcpus = 1
memory_mb = 512
working_set_pages = 256
`

// streamScenario: the STREAM triad model inside a Kitten secondary VM
// under a Kitten primary — ticks, world switches and sub-millisecond
// workload phases. PhaseOps is shrunk to 0.5 ms phases so the measured
// window holds thousands of phase events, and TotalOps is oversized so
// the workload cannot finish inside the window.
func streamScenario() (measure, error) {
	spec := workload.Stream()
	spec.PhaseOps = spec.NativeRate * 0.0005
	spec.TotalOps = spec.NativeRate * 60
	run := workload.New(spec, workload.Env{TwoStage: true, RNG: sim.NewRNG(11)})
	n, err := core.NewSecureNode(core.Options{
		Seed: 7, Manifest: streamManifest, Scheduler: core.SchedulerKitten,
	})
	if err != nil {
		return measure{}, err
	}
	guest := kitten.NewGuest(kitten.DefaultParams())
	guest.Attach(0, run)
	if err := n.AttachGuest("job", guest); err != nil {
		return measure{}, err
	}
	if err := n.Boot(); err != nil {
		return measure{}, err
	}
	n.Run(sim.FromSeconds(1)) // warmup
	return measureWindow(n.Machine.Engine, n.Run, sim.FromSeconds(8)), nil
}

const stormManifest = `
[vm primary]
class = primary
vcpus = 4
memory_mb = 256

[vm victim1]
class = secondary
vcpus = 1
memory_mb = 128
restart_policy = restart
max_restarts = 64
restart_backoff_us = 200

[vm victim2]
class = secondary
vcpus = 1
memory_mb = 128
restart_policy = restart
max_restarts = 64
restart_backoff_us = 200

[vm victim3]
class = secondary
vcpus = 1
memory_mb = 128
restart_policy = restart
max_restarts = 64
restart_backoff_us = 200
`

// stormScenario: a 4-VM node (primary + three spinning victims) with the
// deterministic fault injector crashing, storming and corrupting the
// victims — the crash-containment machinery as an engine workload.
func stormScenario() (measure, error) {
	n, err := core.NewSecureNode(core.Options{
		Seed: 7, Manifest: stormManifest, Scheduler: core.SchedulerKitten,
	})
	if err != nil {
		return measure{}, err
	}
	for i := 1; i <= 3; i++ {
		name := fmt.Sprintf("victim%d", i)
		guest := kitten.NewGuest(kitten.DefaultParams())
		guest.Attach(0, noise.NewSelfish(name, sim.FromSeconds(60)))
		if err := n.AttachGuest(name, guest, i); err != nil {
			return measure{}, err
		}
	}
	if err := n.Boot(); err != nil {
		return measure{}, err
	}
	horizon := sim.FromSeconds(10)
	var rules []faults.Rule
	for i := 1; i <= 3; i++ {
		name := fmt.Sprintf("victim%d", i)
		rules = append(rules,
			faults.Rule{Kind: faults.VCPUCrash, Target: name, Mean: sim.FromSeconds(0.5)},
			faults.Rule{Kind: faults.SpuriousIRQ, Core: i, Mean: sim.FromSeconds(0.05)},
			faults.Rule{Kind: faults.IRQStorm, Core: i, Mean: sim.FromSeconds(0.2), Burst: 4},
			faults.Rule{Kind: faults.TLBCorrupt, Core: i, Mean: sim.FromSeconds(0.25)},
			faults.Rule{Kind: faults.RogueHypercall, Target: name, Mean: sim.FromSeconds(0.25)},
		)
	}
	in, err := faults.New(n.Machine, n.Hyp, 7, rules)
	if err != nil {
		return measure{}, err
	}
	if err := in.Start(n.Machine.Now().Add(horizon)); err != nil {
		return measure{}, err
	}
	n.Run(sim.FromSeconds(1)) // warmup
	return measureWindow(n.Machine.Engine, n.Run, sim.FromSeconds(6)), nil
}

// clusterScenario: the 3-node replicated-attestation failover experiment
// (leader kill, follower partition, heal) measured end to end — three
// per-node engines multiplexed by global event order, fabric delivery,
// Raft-lite elections and the manifest fault campaign. The window covers
// the whole run including construction, so the event count doubles as the
// cross-node determinism gate: any drift in the merged schedule changes
// it.
func clusterScenario() (measure, error) {
	m, err := cluster.ParseManifest(harness.ClusterManifestText)
	if err != nil {
		return measure{}, err
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	r, err := harness.RunClusterManifest(m, 7)
	if err != nil {
		return measure{}, err
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&m1)
	if err := r.Check(); err != nil {
		return measure{}, fmt.Errorf("failover properties: %w", err)
	}
	return measure{
		events: r.EventsFired,
		allocs: m1.Mallocs - m0.Mallocs,
		wall:   wall,
		simDur: m.Run,
	}, nil
}

// forkManifest is the snapshot-fork scenario's partition plan: the
// benchmark node with the watchdog's warm-restore opt-in, matching the
// harness snapshot experiments.
const forkManifest = `
[vm primary]
class = primary
vcpus = 4
memory_mb = 256

[vm job]
class = secondary
vcpus = 1
memory_mb = 512
working_set_pages = 256
restart_policy = restart
max_restarts = 8
restart_backoff_us = 500
restart_from_snapshot = true
`

// buildForkStack cold-builds and boots the snapshot stack, reporting how
// long construction took (the fork comparison's baseline).
func buildForkStack() (*core.SecureNode, time.Duration, error) {
	t0 := time.Now()
	n, err := core.NewSecureNode(core.Options{
		Seed: 7, Manifest: forkManifest, Scheduler: core.SchedulerKitten,
	})
	if err != nil {
		return nil, 0, err
	}
	s := noise.NewSelfish("fork", sim.FromSeconds(30))
	s.ChunkTime = sim.FromMicros(50)
	guest := kitten.NewGuest(kitten.DefaultParams())
	guest.Attach(0, s)
	n.Machine.RegisterSnapshotter("proc."+s.Name(), s)
	if err := n.AttachGuest("job", guest); err != nil {
		return nil, 0, err
	}
	if err := n.Boot(); err != nil {
		return nil, 0, err
	}
	return n, time.Since(t0), nil
}

// forkBlock accumulates the best fork and cold-boot numbers across reps
// for the File's snapshot-fork comparison block.
var forkBlock *ForkResult

// forkScenario: the snapshot/fork hot path. Cold-boots the stack a few
// times (the baseline), warms the survivor to a snapshot point, then
// repeatedly forks the timeline and runs a short divergence window —
// timing and alloc-counting only the Fork calls, which are full
// whole-node restores with copy-on-write stage-2 sharing. Reported as a
// pseudo-scenario: "events" are forks, ns/event is ns/fork.
func forkScenario() (measure, error) {
	const (
		forks    = 256
		coldReps = 4
	)
	coldBest := time.Duration(math.MaxInt64)
	var n *core.SecureNode
	for i := 0; i < coldReps; i++ {
		nn, w, err := buildForkStack()
		if err != nil {
			return measure{}, err
		}
		if w < coldBest {
			coldBest = w
		}
		n = nn
	}
	n.Run(sim.FromSeconds(0.005)) // warm to the fork point
	snap := n.Machine.Snapshot()
	runtime.GC()
	var m0, m1 runtime.MemStats
	var wall time.Duration
	var mallocs uint64
	for i := 0; i < forks; i++ {
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		n.Machine.Fork(snap)
		wall += time.Since(t0)
		runtime.ReadMemStats(&m1)
		mallocs += m1.Mallocs - m0.Mallocs
		// Dirty the timeline so the next fork rewinds real work.
		n.Run(sim.FromMicros(100))
	}
	fb := &ForkResult{
		NsPerFork:      float64(wall.Nanoseconds()) / forks,
		AllocsPerFork:  float64(mallocs) / forks,
		NsPerColdBoot:  float64(coldBest.Nanoseconds()),
		Forks:          forks,
		ColdBootsTimed: coldReps,
	}
	if forkBlock != nil {
		fb.NsPerFork = math.Min(fb.NsPerFork, forkBlock.NsPerFork)
		fb.AllocsPerFork = math.Min(fb.AllocsPerFork, forkBlock.AllocsPerFork)
		fb.NsPerColdBoot = math.Min(fb.NsPerColdBoot, forkBlock.NsPerColdBoot)
	}
	fb.ColdOverFork = fb.NsPerColdBoot / fb.NsPerFork
	forkBlock = fb
	return measure{events: forks, allocs: mallocs, wall: wall}, nil
}

// parallelBlock accumulates the best sequential-vs-parallel comparison
// across reps for the File's cluster-parallel block.
var parallelBlock *ParallelResult

// clusterParallelManifest is the dense failover workload: the built-in
// scenario with the replica spins chunked at 40 µs so every node carries
// a steady event stream — the shape where per-event multiplex overhead
// (and, on wide hosts, single-core execution) actually binds.
func clusterParallelManifest(nodes int) (*cluster.ClusterManifest, error) {
	m, err := cluster.ParseManifest(harness.ClusterManifestText)
	if err != nil {
		return nil, err
	}
	m.Nodes = nodes
	m.SpinChunk = sim.FromMicros(40)
	return m, nil
}

// clusterParallelScenario runs the dense failover workload sequential
// then parallel with the same seed at 4 and 8 nodes. The byte-identity
// of the two artifacts and the equality of the two event counts are
// enforced here, in the run itself — a determinism failure fails the
// bench outright rather than recording garbage speedups. The scenario's
// headline numbers are the 8-node parallel run; the per-rack comparison
// lands in the cluster-parallel block.
func clusterParallelScenario() (measure, error) {
	pb := &ParallelResult{CPUs: runtime.NumCPU()}
	var out measure
	for _, nodes := range []int{4, 8} {
		m, err := clusterParallelManifest(nodes)
		if err != nil {
			return measure{}, err
		}
		t0 := time.Now()
		seq, err := harness.RunClusterManifestMode(m, 7, false)
		if err != nil {
			return measure{}, err
		}
		seqWall := time.Since(t0)
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 = time.Now()
		par, err := harness.RunClusterManifestMode(m, 7, true)
		if err != nil {
			return measure{}, err
		}
		parWall := time.Since(t0)
		runtime.ReadMemStats(&m1)
		if seq.EventsFired != par.EventsFired {
			return measure{}, fmt.Errorf("cluster-parallel %d nodes: DETERMINISM: %d events sequential, %d parallel",
				nodes, seq.EventsFired, par.EventsFired)
		}
		if seq.Artifact() != par.Artifact() {
			return measure{}, fmt.Errorf("cluster-parallel %d nodes: DETERMINISM: artifacts differ between modes", nodes)
		}
		if err := par.Check(); err != nil {
			return measure{}, fmt.Errorf("cluster-parallel %d nodes: failover properties: %w", nodes, err)
		}
		cell := ParallelCell{
			Nodes:           nodes,
			SeqEventsPerSec: float64(seq.EventsFired) / seqWall.Seconds(),
			ParEventsPerSec: float64(par.EventsFired) / parWall.Seconds(),
			Events:          par.EventsFired,
		}
		pb.Cells = append(pb.Cells, cell)
		if nodes == 8 {
			out = measure{events: par.EventsFired, allocs: m1.Mallocs - m0.Mallocs, wall: parWall, simDur: m.Run}
		}
	}
	// Across reps keep each side's best throughput per rack size: the
	// speedup then compares the two modes' best cases instead of pairing
	// one mode's lucky rep against the other's noisy one.
	if parallelBlock != nil {
		for i := range pb.Cells {
			prev := parallelBlock.Cells[i]
			pb.Cells[i].SeqEventsPerSec = math.Max(pb.Cells[i].SeqEventsPerSec, prev.SeqEventsPerSec)
			pb.Cells[i].ParEventsPerSec = math.Max(pb.Cells[i].ParEventsPerSec, prev.ParEventsPerSec)
		}
	}
	for i := range pb.Cells {
		pb.Cells[i].Speedup = pb.Cells[i].ParEventsPerSec / pb.Cells[i].SeqEventsPerSec
	}
	parallelBlock = pb
	return out, nil
}

// parallelSpeedupGate is the -check floor on the 8-node speedup for a
// host with the given CPU count. Below 4 CPUs there is nothing to spread
// engines across, so only the determinism identity (enforced inside the
// scenario run) gates.
func parallelSpeedupGate(cpus int) float64 {
	switch {
	case cpus >= 8:
		return 2.0
	case cpus >= 4:
		return 1.2
	default:
		return 0
	}
}

// migrationBlock carries the latest migration sweep's gate numbers for
// the File's migration block (like forkBlock for snapshot-fork).
var migrationBlock *MigrationResult

// migrationBudgetNs is the downtime budget for one cell. Clean cells
// get twice the ideal wire time of the working set at the fabric's
// 1 GB/s (a 4 KiB page is 4096 ns on the wire) plus 1 ms of handshake
// slack; the kill cell's "downtime" is the pause-to-rollback window,
// bounded by the fault schedule rather than the working set, so it gets
// a flat 80 ms — well under the 120 ms cell but far over any clean run.
func migrationBudgetNs(wsPages int, kill bool) int64 {
	if kill {
		return 80_000_000
	}
	return 2*int64(wsPages)*4096 + 1_000_000
}

// migrationScenario: the live-migration sweep (three working-set cells
// plus the mid-transfer kill cell) measured end to end like the cluster
// scenario — construction included, event count as the cross-node
// determinism gate. It also fills the migration gate block: downtime
// must stay under the per-cell budget, which -check enforces.
func migrationScenario() (measure, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	rep, err := harness.RunMigrationSuite(7)
	if err != nil {
		return measure{}, err
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&m1)
	if err := rep.Check(); err != nil {
		return measure{}, fmt.Errorf("migration properties: %w", err)
	}
	mb := &MigrationResult{}
	var events uint64
	var simDur sim.Duration
	for i := range rep.Cells {
		c := &rep.Cells[i]
		events += c.EventsFired
		simDur += rep.Run
		cr := MigrationCellResult{
			WorkingSetPages: c.WorkingSetPages,
			Kill:            c.Kill,
			DowntimeNs:      int64(c.Downtime.Nanos()),
			BudgetNs:        migrationBudgetNs(c.WorkingSetPages, c.Kill),
			BytesShipped:    c.Bytes,
			Rounds:          len(c.Rounds),
			Outcome:         c.Outcome.String(),
		}
		cr.UnderBudget = cr.DowntimeNs <= cr.BudgetNs
		mb.Cells = append(mb.Cells, cr)
	}
	migrationBlock = mb
	return measure{events: events, allocs: m1.Mallocs - m0.Mallocs, wall: wall, simDur: simDur}, nil
}

// servingBlock carries the latest serving sweep's latency-vs-rate table
// and the sweep-wide prepare means the -check reuse-win gate compares.
var servingBlock *ServingResult

// servingScenario: the ephemeral-VM serving sweep (both primary kernels
// across every arrival rate, a fresh whole-stack boot per cell) measured
// end to end. The sweep runs twice with the same seed in this process
// and the two artifacts must match byte for byte — the obscheck identity
// enforced in the run itself, like cluster-parallel's mode identity —
// before the block records the latency table and the warm-vs-cold
// prepare means. Latencies and prepare costs are pure simulated time,
// so the reuse-win gate is machine-independent.
func servingScenario() (measure, error) {
	cfg, err := serve.ParseManifest(harness.ServingManifestText)
	if err != nil {
		return measure{}, err
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	rep, err := harness.RunServingSweep(7)
	if err != nil {
		return measure{}, err
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&m1)
	rerun, err := harness.RunServingSweep(7)
	if err != nil {
		return measure{}, err
	}
	if rep.Artifact() != rerun.Artifact() {
		return measure{}, fmt.Errorf("serving: DETERMINISM: same-seed sweep artifacts differ")
	}
	if err := rep.Check(); err != nil {
		return measure{}, fmt.Errorf("serving properties: %w", err)
	}
	sb := &ServingResult{}
	var events uint64
	var simDur sim.Duration
	var warmN, coldN int
	var warmSum, coldSum float64
	for _, c := range rep.Cells {
		events += c.Report.EventsFired
		simDur += cfg.Run + cfg.Drain
		s := c.Report.Stats
		warmN += s.WarmPrepares
		coldN += s.ColdPrepares
		warmSum += c.Report.MeanWarmPrepUS * float64(s.WarmPrepares)
		coldSum += c.Report.MeanColdPrepUS * float64(s.ColdPrepares)
		sb.Cells = append(sb.Cells, ServingCellResult{
			Primary:        c.Primary,
			Rate:           c.Rate,
			Completed:      s.Completed,
			P50US:          c.Report.P50,
			P99US:          c.Report.P99,
			P999US:         c.Report.P999,
			WarmPrepares:   s.WarmPrepares,
			ColdPrepares:   s.ColdPrepares,
			MeanWarmPrepUS: c.Report.MeanWarmPrepUS,
			MeanColdPrepUS: c.Report.MeanColdPrepUS,
		})
	}
	if warmN > 0 {
		sb.MeanWarmPrepUS = warmSum / float64(warmN)
	}
	if coldN > 0 {
		sb.MeanColdPrepUS = coldSum / float64(coldN)
	}
	if sb.MeanWarmPrepUS > 0 {
		sb.WarmOverCold = sb.MeanColdPrepUS / sb.MeanWarmPrepUS
	}
	servingBlock = sb
	return measure{events: events, allocs: m1.Mallocs - m0.Mallocs, wall: wall, simDur: simDur}, nil
}

var scenarios = []struct {
	name string
	run  func() (measure, error)
}{
	{"selfish", selfishScenario},
	{"stream", streamScenario},
	{"fault-storm-4vm", stormScenario},
	{"cluster-failover", clusterScenario},
	{"snapshot-fork", forkScenario},
	{"migration", migrationScenario},
	{"cluster-parallel", clusterParallelScenario},
	{"serving", servingScenario},
}

// runAll measures every scenario reps times. Recording (median=true)
// keeps the median ns/event rep — a representative number with headroom
// against lucky minima — while checking keeps the best rep, so one noisy
// rep on a busy machine cannot fail the gate.
func runAll(reps int, median bool) (map[string]ScenarioResult, error) {
	out := make(map[string]ScenarioResult)
	for _, sc := range scenarios {
		runs := make([]ScenarioResult, 0, reps)
		for r := 0; r < reps; r++ {
			m, err := sc.run()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", sc.name, err)
			}
			runs = append(runs, m.result())
		}
		sort.Slice(runs, func(i, j int) bool { return runs[i].NsPerEvent < runs[j].NsPerEvent })
		pick := runs[0]
		if median {
			pick = runs[len(runs)/2]
		}
		fmt.Printf("%-16s %9.1f ns/event %12.0f events/s %8.4f allocs/event (%d events, %.1fs sim)\n",
			sc.name, pick.NsPerEvent, pick.EventsPerSec, pick.AllocsPerEvent, pick.Events, pick.SimSeconds)
		out[sc.name] = pick
	}
	return out, nil
}

func readFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func main() {
	out := flag.String("out", "", "write results to this JSON file (preserving its baseline block)")
	check := flag.String("check", "", "compare ns/event against this committed JSON file")
	recordBaseline := flag.String("record-baseline", "", "also pin this run as the baseline block, with the given label")
	reps := flag.Int("reps", 3, "repetitions per scenario (best ns/event wins)")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional ns/event regression for -check")
	flag.Parse()

	results, err := runAll(*reps, *check == "")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *check != "" {
		ref, err := readFile(*check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		// Normalize committed wall-clock numbers to this machine's speed.
		// The scale is clamped: a wildly different ratio means the
		// calibration is not comparable and the raw numbers are the best
		// reference available.
		// Only loosen, never tighten: calibration jitter on the recording
		// machine must not manufacture failures there.
		scale := 1.0
		if ref.CalibNsPerOp > 0 {
			scale = calibrate() / ref.CalibNsPerOp
			if scale < 1 {
				scale = 1
			}
			if scale > 4 {
				scale = 4
			}
		}
		failed := false
		for name, want := range ref.Scenarios {
			got, ok := results[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "benchjson: scenario %q in %s no longer exists\n", name, *check)
				failed = true
				continue
			}
			// Event counts are deterministic: any drift means the
			// simulation itself changed, not just its speed.
			if got.Events != want.Events {
				fmt.Fprintf(os.Stderr, "benchjson: DETERMINISM %s: %d events, committed %d\n",
					name, got.Events, want.Events)
				failed = true
			}
			// Allocation behavior is near machine-independent; slack
			// covers GC-timing jitter in amortized slice growth only.
			if allocLimit := want.AllocsPerEvent*1.25 + 0.5; got.AllocsPerEvent > allocLimit {
				fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s: %.4f allocs/event > %.4f (committed %.4f)\n",
					name, got.AllocsPerEvent, allocLimit, want.AllocsPerEvent)
				failed = true
			}
			limit := want.NsPerEvent * scale * (1 + *tolerance)
			if got.NsPerEvent > limit {
				fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s: %.1f ns/event > %.1f (committed %.1f, speed scale %.2f, +%.0f%%)\n",
					name, got.NsPerEvent, limit, want.NsPerEvent, scale, 100**tolerance)
				failed = true
			} else {
				fmt.Printf("check %-16s ok: %.1f ns/event vs committed %.1f (limit %.1f)\n",
					name, got.NsPerEvent, want.NsPerEvent, limit)
			}
		}
		if ref.Fork != nil {
			if forkBlock == nil {
				fmt.Fprintln(os.Stderr, "benchjson: snapshot-fork block committed but no fork measurement ran")
				failed = true
			} else if forkBlock.ColdOverFork < 10 {
				fmt.Fprintf(os.Stderr, "benchjson: REGRESSION snapshot-fork: cold boot is only %.1f× a fork (%.1f µs vs %.1f µs), gate is 10×\n",
					forkBlock.ColdOverFork, forkBlock.NsPerColdBoot/1e3, forkBlock.NsPerFork/1e3)
				failed = true
			} else {
				fmt.Printf("check snapshot-fork    ok: fork %.1f µs vs cold boot %.1f µs (%.0f×, gate 10×)\n",
					forkBlock.NsPerFork/1e3, forkBlock.NsPerColdBoot/1e3, forkBlock.ColdOverFork)
			}
		}
		if ref.Migration != nil {
			if migrationBlock == nil {
				fmt.Fprintln(os.Stderr, "benchjson: migration block committed but no migration sweep ran")
				failed = true
			} else {
				over := 0
				for _, c := range migrationBlock.Cells {
					if !c.UnderBudget {
						fmt.Fprintf(os.Stderr, "benchjson: REGRESSION migration ws=%d kill=%v: downtime %.3f ms over budget %.3f ms\n",
							c.WorkingSetPages, c.Kill, float64(c.DowntimeNs)/1e6, float64(c.BudgetNs)/1e6)
						failed = true
						over++
					}
				}
				if over == 0 {
					fmt.Printf("check migration        ok: %d cells under downtime budget\n", len(migrationBlock.Cells))
				}
			}
		}
		if ref.Parallel != nil {
			if parallelBlock == nil {
				fmt.Fprintln(os.Stderr, "benchjson: cluster-parallel block committed but no comparison ran")
				failed = true
			} else {
				gate := parallelSpeedupGate(parallelBlock.CPUs)
				for _, c := range parallelBlock.Cells {
					if c.Nodes == 8 && gate > 0 && c.Speedup < gate {
						fmt.Fprintf(os.Stderr, "benchjson: REGRESSION cluster-parallel: %d-node speedup %.2f× < %.1f× gate on %d CPUs\n",
							c.Nodes, c.Speedup, gate, parallelBlock.CPUs)
						failed = true
					}
				}
				if !failed {
					for _, c := range parallelBlock.Cells {
						fmt.Printf("check cluster-parallel ok: %d nodes %.2fx (seq %.0f ev/s, par %.0f ev/s, %d CPUs, gate %.1fx)\n",
							c.Nodes, c.Speedup, c.SeqEventsPerSec, c.ParEventsPerSec, parallelBlock.CPUs, parallelSpeedupGate(parallelBlock.CPUs))
					}
				}
			}
		}
		if ref.Serving != nil {
			if servingBlock == nil {
				fmt.Fprintln(os.Stderr, "benchjson: serving block committed but no serving sweep ran")
				failed = true
			} else if servingBlock.MeanWarmPrepUS >= servingBlock.MeanColdPrepUS {
				fmt.Fprintf(os.Stderr, "benchjson: REGRESSION serving: warm fork %.1f µs >= cold boot %.1f µs — the reuse win is gone\n",
					servingBlock.MeanWarmPrepUS, servingBlock.MeanColdPrepUS)
				failed = true
			} else {
				fmt.Printf("check serving          ok: warm fork %.1f µs vs cold boot %.1f µs (%.1f×) across %d cells\n",
					servingBlock.MeanWarmPrepUS, servingBlock.MeanColdPrepUS, servingBlock.WarmOverCold, len(servingBlock.Cells))
			}
		}
		if failed {
			os.Exit(1)
		}
	}

	if *out != "" {
		f := &File{
			Schema:       "khsim-bench/1",
			Go:           runtime.Version(),
			Note:         "wall-clock throughput of the internal/sim discrete-event engine; see EXPERIMENTS.md",
			CalibNsPerOp: calibrate(),
			Fork:         forkBlock,
			Migration:    migrationBlock,
			Parallel:     parallelBlock,
			Serving:      servingBlock,
			Scenarios:    results,
		}
		if prev, err := readFile(*out); err == nil {
			f.Baseline = prev.Baseline
		}
		if *recordBaseline != "" {
			f.Baseline = &Baseline{Label: *recordBaseline, Scenarios: results}
		}
		data, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}
}
