// Command attest demonstrates the trusted-boot side of the system: it
// boots a secure node, prints the measured-boot attestation (PCR and
// event log), then exercises the paper's §VII future-work proposal by
// launching a signed VM image — and showing that tampered or unsigned
// images are rejected.
package main

import (
	"crypto/ed25519"
	"flag"
	"fmt"
	"os"

	"khsim/internal/boot"
	"khsim/internal/core"
	"khsim/internal/kitten"
	"khsim/internal/sim"
)

const manifest = `
[vm primary]
class = primary
vcpus = 4
memory_mb = 256

[vm job]
class = secondary
vcpus = 1
memory_mb = 128
`

func main() {
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "attest: %v\n", err)
		os.Exit(1)
	}

	// Vendor key pair; the public half is provisioned into BL1.
	keySeed := make([]byte, ed25519.SeedSize)
	for i := range keySeed {
		keySeed[i] = byte(*seed + uint64(i))
	}
	priv := ed25519.NewKeyFromSeed(keySeed)
	pub := priv.Public().(ed25519.PublicKey)

	node, err := core.NewSecureNode(core.Options{
		Seed: *seed, Manifest: manifest,
		Scheduler: core.SchedulerKitten, RootKey: pub,
	})
	if err != nil {
		fail(err)
	}
	guest := kitten.NewGuest(kitten.DefaultParams())
	if err := node.AttachGuest("job", guest); err != nil {
		fail(err)
	}
	if err := node.Boot(); err != nil {
		fail(err)
	}
	node.Run(sim.FromSeconds(0.5))

	att, err := node.Attestation()
	if err != nil {
		fail(err)
	}
	fmt.Printf("measured boot PCR: %x\n", att.PCR)
	fmt.Println("event log:")
	for _, e := range att.Log.Entries {
		fmt.Printf("  %-10s %-18s %x\n", e.Stage, e.Name, e.Digest[:8])
	}
	if boot.ReplayLog(att.Log) == att.PCR {
		fmt.Println("log replay: PCR reproduced ✔")
	} else {
		fail(fmt.Errorf("log replay mismatch"))
	}

	// Launch a signed image into the stopped job VM.
	if err := node.StopVM("job"); err != nil {
		fail(err)
	}
	node.Run(sim.FromSeconds(0.2))

	img := boot.Image{Name: "job-v2", Payload: []byte("sensitive workload image v2")}
	if _, err := node.LaunchSignedVM("job", img); err != nil {
		fmt.Printf("unsigned image rejected ✔ (%v)\n", err)
	} else {
		fail(fmt.Errorf("unsigned image accepted"))
	}

	boot.SignImage(priv, &img)
	tampered := img
	tampered.Payload = append([]byte(nil), img.Payload...)
	tampered.Payload[0] ^= 1
	if _, err := node.LaunchSignedVM("job", tampered); err != nil {
		fmt.Printf("tampered image rejected ✔ (%v)\n", err)
	} else {
		fail(fmt.Errorf("tampered image accepted"))
	}

	digest, err := node.LaunchSignedVM("job", img)
	if err != nil {
		fail(err)
	}
	fmt.Printf("signed image %q launched, digest %x ✔\n", img.Name, digest[:8])
	node.Run(sim.FromSeconds(0.2))
	job, _ := node.Hyp.VMByName("job")
	fmt.Printf("job VM state: %v\n", job.State())
}
