// Command khsim boots a simulated secure node from a Hafnium manifest
// and runs one of the paper's benchmarks inside a secondary VM, printing
// the result and the hypervisor's activity counters.
//
// Usage:
//
//	khsim [-manifest FILE] [-scheduler kitten|linux] [-bench NAME] [-seed S]
//
// With no manifest the paper's evaluation partition plan is used. Bench
// names: hpcg, stream, randomaccess, nas-lu, nas-bt, nas-cg, nas-ep,
// nas-sp, selfish.
package main

import (
	"flag"
	"fmt"
	"os"

	"khsim/internal/core"
	"khsim/internal/hafnium"
	"khsim/internal/harness"
	"khsim/internal/kitten"
	"khsim/internal/noise"
	"khsim/internal/osapi"
	"khsim/internal/sim"
	"khsim/internal/workload"
)

const defaultManifest = `
# Paper evaluation plan: a scheduling VM plus one benchmark VM.
[vm primary]
class = primary
vcpus = 4
memory_mb = 256

[vm job]
class = secondary
vcpus = 1
memory_mb = 512
working_set_pages = 256
`

func main() {
	manifestPath := flag.String("manifest", "", "Hafnium manifest file (default: built-in evaluation plan)")
	schedName := flag.String("scheduler", "kitten", "primary VM kernel: kitten or linux")
	benchName := flag.String("bench", "randomaccess", "benchmark to run in the job VM")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "khsim: %v\n", err)
		os.Exit(1)
	}

	manifest := defaultManifest
	if *manifestPath != "" {
		b, err := os.ReadFile(*manifestPath)
		if err != nil {
			fail(err)
		}
		manifest = string(b)
	}
	var sched core.Scheduler
	switch *schedName {
	case "kitten":
		sched = core.SchedulerKitten
	case "linux":
		sched = core.SchedulerLinux
	default:
		fail(fmt.Errorf("unknown scheduler %q", *schedName))
	}

	var proc osapi.Process
	var report func()
	if *benchName == "selfish" {
		s := noise.NewSelfish(*schedName, sim.FromSeconds(10))
		proc = s
		report = func() { fmt.Println(s.Result.Summary()) }
	} else {
		spec, ok := workload.ByName(*benchName)
		if !ok {
			fail(fmt.Errorf("unknown benchmark %q (try -bench hpcg|stream|randomaccess|nas-*|selfish)", *benchName))
		}
		run := workload.New(spec, workload.Env{TwoStage: true, RNG: sim.NewRNG(*seed)})
		proc = run
		report = func() { fmt.Println(run.Result.String()) }
	}

	node, err := core.NewSecureNode(core.Options{
		Seed: *seed, Manifest: manifest, Scheduler: sched,
	})
	if err != nil {
		fail(err)
	}
	guest := kitten.NewGuest(kitten.DefaultParams())
	guest.Attach(0, proc)
	if err := node.AttachGuest("job", guest); err != nil {
		fail(err)
	}
	if err := node.Boot(); err != nil {
		fail(err)
	}
	node.Run(sim.FromSeconds(60))

	fmt.Printf("node: %d cores @ %.3f GHz, scheduler=%s, config=%s\n",
		len(node.Machine.Cores), float64(node.Machine.Freq)/1e9, sched, harness.KittenVM)
	report()
	st := node.Hyp.Stats()
	fmt.Printf("hypervisor: traps=%d worldswitches=%d runs=%d injections=%d kicks=%d\n",
		st.Traps, st.WorldSwitches, st.Runs, st.Injections, st.Kicks)
	for _, vm := range node.Hyp.VMs() {
		if vm.Class() != hafnium.Primary {
			fmt.Printf("vm %-8s cpu time %v (%v)\n", vm.Name(), node.Hyp.CPUTime(vm.ID()), vm.State())
		}
	}
}
