// Command khsim boots a simulated secure node from a Hafnium manifest
// and runs one of the paper's benchmarks inside a secondary VM, printing
// the result and the hypervisor's activity counters.
//
// Usage:
//
//	khsim [-manifest FILE] [-scheduler kitten|linux] [-bench NAME] [-seed S]
//	khsim faults [-manifest FILE] [-seed S] [-spec RULES] [-seconds N] [-contain]
//	khsim cluster [-manifest FILE] [-seed S] [-artifact FILE] [-trace] [-check]
//	khsim metrics [-config native|kitten|linux] [-bench NAME] [-seed S] [-format text|json]
//	khsim trace [-config native|kitten|linux] [-bench NAME] [-seed S] [-format perfetto|tsv] [-out FILE] [-check]
//	khsim snapshot [-seed S] [-artifact FILE] [-check] [-sweep [-delays LIST] [-window-ms N]]
//	khsim migrate [-seed S] [-artifact FILE] [-check]
//	khsim serve [-manifest FILE] [-seed S] [-artifact FILE] [-check]
//
// With no manifest the paper's evaluation partition plan is used. Bench
// names: hpcg, stream, randomaccess, nas-lu, nas-bt, nas-cg, nas-ep,
// nas-sp, selfish.
//
// The faults subcommand runs the deterministic fault-injection campaign
// against a victim VM and prints the injection trace, the hypervisor's
// containment counters, and each VM's fate; -contain instead runs the
// crash-containment experiment (primary noise with vs without faults).
//
// The cluster subcommand runs the multi-node failover experiment: N
// secure-node stacks joined by a simulated fabric, a Raft-lite service
// replicating the hash-chained attestation ledger across them, and a
// manifest-scheduled fault campaign (leader kills, partitions, heals,
// message drops, delay spikes — see manifests/cluster-3node.manifest).
// -artifact writes the deterministic merged trace; -check exits non-zero
// unless failover stayed bounded and the ledgers converged.
//
// The metrics subcommand runs one benchmark and prints the node's full
// metrics snapshot (world switches, hypercalls by function, virtual IRQ
// injections, stage-2 faults, TLB and timer activity, ring doorbells),
// deterministically: same seed, same snapshot, byte for byte. The trace
// subcommand exports the run's event trace as Chrome trace-event JSON
// loadable in Perfetto (ui.perfetto.dev), or as TSV.
//
// The snapshot subcommand demonstrates the whole-stack snapshot/fork
// contract: it captures a running stack mid-simulation, forks the
// timeline twice verbatim and once with an injected VM crash, and
// verifies the verbatim forks replay bit-identically while the faulted
// one diverges through the watchdog's warm snapshot restore. -sweep
// instead runs the fork-based sweep: one boot, one warm snapshot, one
// forked timeline per fault-injection delay.
//
// The migrate subcommand runs the live VM migration experiment: a
// three-node cluster moves a running job VM between nodes with pre-copy
// rounds over the fabric, a stop-and-copy handoff and a commit
// handshake, sweeping the VM's working set to measure downtime, plus a
// fault cell that partitions the target mid-transfer and must leave
// exactly one live copy (rolled back at the source), with every
// lifecycle step as a signed record in the replicated attestation
// ledger.
//
// The serve subcommand runs the multi-tenant ephemeral-VM serving sweep:
// an open-loop job stream admitted through the login VM into a pool of
// recycled environment VMs (warm stage-2 fork vs cold rebuild), swept
// across arrival rates under both primary kernels, reporting
// p50/p99/p999 admission-to-completion latency per rate with every pool
// transition signed into the attestation ledger (see
// manifests/serving.manifest).
package main

import (
	"flag"
	"fmt"
	"os"

	"khsim/internal/cluster"
	"khsim/internal/core"
	"khsim/internal/faults"
	"khsim/internal/hafnium"
	"khsim/internal/harness"
	"khsim/internal/kitten"
	"khsim/internal/noise"
	"khsim/internal/osapi"
	"khsim/internal/sim"
	"khsim/internal/workload"
)

const defaultManifest = `
# Paper evaluation plan: a scheduling VM plus one benchmark VM.
[vm primary]
class = primary
vcpus = 4
memory_mb = 256

[vm job]
class = secondary
vcpus = 1
memory_mb = 512
working_set_pages = 256
`

// faultsManifest is the faults subcommand's default plan: the victim VM
// carries a restart budget so injected crashes exercise the watchdog.
const faultsManifest = `
[vm primary]
class = primary
vcpus = 4
memory_mb = 256

[vm job]
class = secondary
vcpus = 1
memory_mb = 128
restart_policy = restart
max_restarts = 8
restart_backoff_us = 200
`

func fail(err error) {
	fmt.Fprintf(os.Stderr, "khsim: %v\n", err)
	os.Exit(1)
}

// faultsCmd implements `khsim faults`.
func faultsCmd(args []string) {
	fs := flag.NewFlagSet("faults", flag.ExitOnError)
	manifestPath := fs.String("manifest", "", "Hafnium manifest file (default: built-in fault-recovery plan)")
	seed := fs.Uint64("seed", 1, "simulation seed (same seed, same fault trace)")
	spec := fs.String("spec", "crash:job:200ms,spurious::100ms,tlb::250ms,rogue:job:150ms",
		"fault rules: kind[:target[:mean]],... (kinds: spurious storm drift s2flip tlb crash rogue; "+
			"partition heal netdrop netdelay take node<N> targets and need a cluster run)")
	seconds := fs.Float64("seconds", 2, "simulated run time")
	contain := fs.Bool("contain", false, "run the crash-containment experiment instead")
	fs.Parse(args)

	if *contain {
		r, err := harness.RunFaultContainment(*seed, sim.FromSeconds(*seconds))
		if err != nil {
			fail(err)
		}
		fmt.Print(r)
		return
	}

	manifest := faultsManifest
	if *manifestPath != "" {
		b, err := os.ReadFile(*manifestPath)
		if err != nil {
			fail(err)
		}
		manifest = string(b)
	}
	rules, err := faults.ParseSpec(*spec)
	if err != nil {
		fail(err)
	}
	node, err := core.NewSecureNode(core.Options{
		Seed: *seed, Manifest: manifest, Scheduler: core.SchedulerKitten,
	})
	if err != nil {
		fail(err)
	}
	runTime := sim.FromSeconds(*seconds)
	// Give every secondary a spin payload so faults always have live prey.
	for _, vm := range node.Hyp.VMs() {
		if vm.Class() == hafnium.Primary {
			continue
		}
		guest := kitten.NewGuest(kitten.DefaultParams())
		guest.Attach(0, noise.NewSelfish(vm.Name(), runTime*2))
		if err := node.AttachGuest(vm.Name(), guest); err != nil {
			fail(err)
		}
	}
	if err := node.Boot(); err != nil {
		fail(err)
	}
	in, err := faults.New(node.Machine, node.Hyp, *seed, rules)
	if err != nil {
		fail(err)
	}
	if err := in.Start(node.Machine.Now().Add(runTime)); err != nil {
		fail(err)
	}
	node.Run(runTime)

	fmt.Printf("fault injection: seed=%d spec=%q over %gs\n", *seed, *spec, *seconds)
	for _, rec := range in.Trace() {
		fmt.Println(rec)
	}
	ist := in.Stats()
	fmt.Printf("injected: %d faults\n", ist.Injected)
	st := node.Hyp.Stats()
	fmt.Printf("hypervisor: aborts=%d restarts=%d quarantines=%d scrubbed_pages=%d bad_hypercalls=%d worldswitches=%d\n",
		st.Aborts, st.Restarts, st.Quarantines, st.ScrubbedPages, st.BadHypercalls, st.WorldSwitches)
	for _, vm := range node.Hyp.VMs() {
		if vm.Class() == hafnium.Primary {
			continue
		}
		line := fmt.Sprintf("vm %-8s %-12v restarts=%d cpu=%v", vm.Name(), vm.State(), vm.Restarts(), node.Hyp.CPUTime(vm.ID()))
		if r := vm.CrashReason(); r != "" {
			line += " last_crash=" + r
		}
		fmt.Println(line)
	}
	if err := node.Hyp.VerifyIsolation(); err != nil {
		fail(fmt.Errorf("isolation violated: %w", err))
	}
	fmt.Println("isolation: verified")
}

// clusterCmd implements `khsim cluster`: the multi-node replicated
// attestation failover experiment.
func clusterCmd(args []string) {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	manifestPath := fs.String("manifest", "", "cluster manifest file (default: built-in 3-node failover scenario)")
	seed := fs.Uint64("seed", 1, "simulation seed (same seed, same merged trace)")
	artifact := fs.String("artifact", "", "write the deterministic merged trace artifact to FILE")
	showTrace := fs.Bool("trace", false, "print the full merged trace instead of the summary")
	check := fs.Bool("check", false, "exit non-zero unless the failover properties hold")
	parallel := fs.Bool("parallel", false, "run node engines on goroutines under conservative windows (same seed, same artifact)")
	nodes := fs.Int("nodes", 0, "override the manifest's rack size")
	fs.Parse(args)

	text := harness.ClusterManifestText
	if *manifestPath != "" {
		b, err := os.ReadFile(*manifestPath)
		if err != nil {
			fail(err)
		}
		text = string(b)
	}
	m, err := cluster.ParseManifest(text)
	if err != nil {
		fail(err)
	}
	if *nodes < 0 {
		fail(fmt.Errorf("khsim cluster: -nodes must be positive, got %d", *nodes))
	}
	if *nodes > 0 {
		m.Nodes = *nodes
	}
	r, err := harness.RunClusterManifestMode(m, *seed, *parallel)
	if err != nil {
		fail(err)
	}
	if *artifact != "" {
		if err := os.WriteFile(*artifact, []byte(r.Artifact()), 0o644); err != nil {
			fail(err)
		}
	}
	if *showTrace {
		fmt.Print(r.Artifact())
	} else {
		fmt.Print(r.String())
	}
	if *check {
		if err := r.Check(); err != nil {
			fail(err)
		}
	}
}

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "faults":
			faultsCmd(os.Args[2:])
			return
		case "cluster":
			clusterCmd(os.Args[2:])
			return
		case "metrics":
			metricsCmd(os.Args[2:])
			return
		case "trace":
			traceCmd(os.Args[2:])
			return
		case "snapshot":
			snapshotCmd(os.Args[2:])
			return
		case "migrate":
			migrateCmd(os.Args[2:])
			return
		case "serve":
			serveCmd(os.Args[2:])
			return
		}
	}
	manifestPath := flag.String("manifest", "", "Hafnium manifest file (default: built-in evaluation plan)")
	schedName := flag.String("scheduler", "kitten", "primary VM kernel: kitten or linux")
	benchName := flag.String("bench", "randomaccess", "benchmark to run in the job VM")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	manifest := defaultManifest
	if *manifestPath != "" {
		b, err := os.ReadFile(*manifestPath)
		if err != nil {
			fail(err)
		}
		manifest = string(b)
	}
	var sched core.Scheduler
	switch *schedName {
	case "kitten":
		sched = core.SchedulerKitten
	case "linux":
		sched = core.SchedulerLinux
	default:
		fail(fmt.Errorf("unknown scheduler %q", *schedName))
	}

	var proc osapi.Process
	var report func()
	if *benchName == "selfish" {
		s := noise.NewSelfish(*schedName, sim.FromSeconds(10))
		proc = s
		report = func() { fmt.Println(s.Result.Summary()) }
	} else {
		spec, ok := workload.ByName(*benchName)
		if !ok {
			fail(fmt.Errorf("unknown benchmark %q (try -bench hpcg|stream|randomaccess|nas-*|selfish)", *benchName))
		}
		run := workload.New(spec, workload.Env{TwoStage: true, RNG: sim.NewRNG(*seed)})
		proc = run
		report = func() { fmt.Println(run.Result.String()) }
	}

	node, err := core.NewSecureNode(core.Options{
		Seed: *seed, Manifest: manifest, Scheduler: sched,
	})
	if err != nil {
		fail(err)
	}
	guest := kitten.NewGuest(kitten.DefaultParams())
	guest.Attach(0, proc)
	if err := node.AttachGuest("job", guest); err != nil {
		fail(err)
	}
	if err := node.Boot(); err != nil {
		fail(err)
	}
	node.Run(sim.FromSeconds(60))

	fmt.Printf("node: %d cores @ %.3f GHz, scheduler=%s, config=%s\n",
		len(node.Machine.Cores), float64(node.Machine.Freq)/1e9, sched, harness.KittenVM)
	report()
	st := node.Hyp.Stats()
	fmt.Printf("hypervisor: traps=%d worldswitches=%d runs=%d injections=%d kicks=%d\n",
		st.Traps, st.WorldSwitches, st.Runs, st.Injections, st.Kicks)
	for _, vm := range node.Hyp.VMs() {
		if vm.Class() != hafnium.Primary {
			fmt.Printf("vm %-8s cpu time %v (%v)\n", vm.Name(), node.Hyp.CPUTime(vm.ID()), vm.State())
		}
	}
}
