package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"khsim/internal/harness"
	"khsim/internal/metrics"
	"khsim/internal/sim"
	"khsim/internal/workload"
)

// metricsCmd implements `khsim metrics`: run one benchmark in one
// configuration and print the node's full metrics snapshot. Same seed,
// same snapshot, byte for byte.
func metricsCmd(args []string) {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	cfgName := fs.String("config", "kitten", "configuration: native, kitten or linux")
	benchName := fs.String("bench", "randomaccess", "benchmark to run (or selfish)")
	seed := fs.Uint64("seed", 1, "simulation seed")
	seconds := fs.Float64("seconds", 2, "selfish-detour spin seconds")
	format := fs.String("format", "text", "output format: text or json")
	fs.Parse(args)

	cfg, ok := harness.ParseConfig(*cfgName)
	if !ok {
		fail(fmt.Errorf("unknown config %q (try native|kitten|linux)", *cfgName))
	}

	var snap *metrics.Snapshot
	var err error
	if *benchName == "selfish" {
		_, snap, err = harness.RunSelfishMetrics(cfg, *seed, sim.FromSeconds(*seconds))
	} else {
		spec, known := workload.ByName(*benchName)
		if !known {
			fail(fmt.Errorf("unknown benchmark %q (try -bench hpcg|stream|randomaccess|nas-*|selfish)", *benchName))
		}
		_, snap, err = harness.RunWorkloadMetrics(cfg, spec, *seed)
	}
	if err != nil {
		fail(err)
	}

	switch *format {
	case "text":
		fmt.Printf("# khsim metrics: config=%s bench=%s seed=%d\n", cfg, *benchName, *seed)
		if err := snap.WriteText(os.Stdout); err != nil {
			fail(err)
		}
	case "json":
		if err := snap.WriteJSON(os.Stdout); err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown format %q (try text|json)", *format))
	}
}

// traceCmd implements `khsim trace`: run one benchmark with execution
// spans enabled and export the node's trace as Chrome trace-event JSON
// (loadable in Perfetto) or TSV.
func traceCmd(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	cfgName := fs.String("config", "kitten", "configuration: native, kitten or linux")
	benchName := fs.String("bench", "selfish", "benchmark to run (or selfish)")
	seed := fs.Uint64("seed", 1, "simulation seed")
	seconds := fs.Float64("seconds", 1, "selfish-detour spin seconds")
	format := fs.String("format", "perfetto", "output format: perfetto or tsv")
	out := fs.String("out", "", "output file (default stdout)")
	check := fs.Bool("check", false, "validate the Perfetto JSON before writing")
	fs.Parse(args)

	cfg, ok := harness.ParseConfig(*cfgName)
	if !ok {
		fail(fmt.Errorf("unknown config %q (try native|kitten|linux)", *cfgName))
	}

	var trace *sim.Trace
	var err error
	if *benchName == "selfish" {
		_, trace, err = harness.RunSelfishTraced(cfg, *seed, sim.FromSeconds(*seconds))
	} else {
		spec, known := workload.ByName(*benchName)
		if !known {
			fail(fmt.Errorf("unknown benchmark %q (try -bench hpcg|stream|randomaccess|nas-*|selfish)", *benchName))
		}
		_, trace, err = harness.RunWorkloadTraced(cfg, spec, *seed)
	}
	if err != nil {
		fail(err)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, ferr := os.Create(*out)
		if ferr != nil {
			fail(ferr)
		}
		defer f.Close()
		w = f
	}

	switch *format {
	case "perfetto":
		var buf bytes.Buffer
		if err := trace.WritePerfetto(&buf); err != nil {
			fail(err)
		}
		if *check {
			if err := sim.ValidatePerfetto(buf.Bytes()); err != nil {
				fail(fmt.Errorf("perfetto validation: %w", err))
			}
			fmt.Fprintf(os.Stderr, "khsim trace: %d bytes of valid Perfetto JSON (config=%s bench=%s seed=%d)\n",
				buf.Len(), cfg, *benchName, *seed)
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			fail(err)
		}
	case "tsv":
		if err := trace.WriteTSV(w); err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown format %q (try perfetto|tsv)", *format))
	}
}
