package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"khsim/internal/harness"
	"khsim/internal/sim"
)

// snapshotCmd implements `khsim snapshot`: the whole-stack snapshot /
// copy-on-write fork demonstration. By default it runs the determinism
// experiment — capture mid-run, fork the timeline twice verbatim and
// once with an injected VM crash — and prints the verdict. -sweep runs
// the fork-based parameter sweep instead (boot once, fork the warm
// snapshot per fault-delay cell). -check exits non-zero unless the
// fork-determinism contract holds, and -artifact writes the byte-
// comparable experiment artifact (the obscheck fork gate runs the
// command twice and compares the files).
func snapshotCmd(args []string) {
	fs := flag.NewFlagSet("snapshot", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "simulation seed (same seed, same artifact)")
	artifact := fs.String("artifact", "", "write the deterministic experiment artifact to FILE")
	check := fs.Bool("check", false, "exit non-zero unless forked timelines replay bit-identically")
	sweep := fs.Bool("sweep", false, "run the fork-based fault-delay sweep instead")
	sweepDelays := fs.String("delays", "none,0.5ms,1ms,2ms,4ms",
		"comma-separated crash delays for -sweep ('none' = control cell)")
	sweepWindow := fs.Float64("window-ms", 8, "per-cell window for -sweep, in simulated milliseconds")
	fs.Parse(args)

	if *sweep {
		var kills []sim.Duration
		for _, f := range strings.Split(*sweepDelays, ",") {
			f = strings.TrimSpace(f)
			if f == "none" {
				kills = append(kills, -1)
				continue
			}
			d, err := parseSweepDelay(f)
			if err != nil {
				fail(err)
			}
			kills = append(kills, d)
		}
		rep, err := harness.RunForkSweep(*seed, kills, sim.Duration(*sweepWindow*float64(sim.Millisecond)))
		if err != nil {
			fail(err)
		}
		fmt.Print(rep.String())
		return
	}

	rep, err := harness.RunSnapshotCheck(*seed)
	if err != nil {
		fail(err)
	}
	if *artifact != "" {
		if err := os.WriteFile(*artifact, []byte(rep.Artifact()), 0o644); err != nil {
			fail(err)
		}
	}
	fmt.Print(rep.String())
	if *check {
		if err := rep.Check(); err != nil {
			fail(err)
		}
	}
}

// parseSweepDelay parses "500us" / "0.5ms" / "2ms" into a Duration.
func parseSweepDelay(s string) (sim.Duration, error) {
	var v float64
	var unit sim.Duration
	var num string
	switch {
	case strings.HasSuffix(s, "us"):
		unit, num = sim.Microsecond, strings.TrimSuffix(s, "us")
	case strings.HasSuffix(s, "ms"):
		unit, num = sim.Millisecond, strings.TrimSuffix(s, "ms")
	default:
		return 0, fmt.Errorf("delay %q needs a us or ms suffix", s)
	}
	if _, err := fmt.Sscanf(num, "%g", &v); err != nil || v < 0 {
		return 0, fmt.Errorf("bad delay %q", s)
	}
	return sim.Duration(v * float64(unit)), nil
}
