package main

import (
	"flag"
	"fmt"
	"os"

	"khsim/internal/harness"
)

// migrateCmd implements `khsim migrate`: the live VM migration sweep. A
// three-node cluster moves a running job VM from node 0 to a standby
// slot on node 1 — pre-copy rounds over the fabric, stop-and-copy,
// commit handshake, signed migrate-out/migrate-in records in the
// replicated attestation ledger — across growing working sets, plus one
// fault cell that partitions the target mid-transfer and must roll the
// VM back to the source. -check exits non-zero unless every cell left
// exactly one live copy, the signed ledger converged, and downtime grew
// monotonically with the working set; -artifact writes the byte-
// comparable artifact (the obscheck migration gate runs the command
// twice with the same seed and compares the files).
func migrateCmd(args []string) {
	fs := flag.NewFlagSet("migrate", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "simulation seed (same seed, same artifact)")
	artifact := fs.String("artifact", "", "write the deterministic experiment artifact to FILE")
	check := fs.Bool("check", false, "exit non-zero unless the migration invariants hold")
	fs.Parse(args)

	rep, err := harness.RunMigrationSuite(*seed)
	if err != nil {
		fail(err)
	}
	if *artifact != "" {
		if err := os.WriteFile(*artifact, []byte(rep.Artifact()), 0o644); err != nil {
			fail(err)
		}
	}
	fmt.Print(rep.String())
	if *check {
		if err := rep.Check(); err != nil {
			fail(err)
		}
	}
}
