package main

import (
	"flag"
	"fmt"
	"os"

	"khsim/internal/harness"
)

// serveCmd implements `khsim serve`: the multi-tenant ephemeral-VM
// serving sweep. An open-loop job stream (seeded arrival process,
// rate-swept) is admitted through the super-secondary login VM and
// dispatched into a pool of secondary environment VMs that are prepared
// once — warm fork from the boot-time stage-2 snapshot when the pool
// budget allows, cold rebuild otherwise — and reused until a TTL reaper
// retires them; crashes requeue the in-flight job and the watchdog
// replaces the environment. The sweep runs every arrival rate under both
// primary kernels (kitten and linux) and prints the latency-vs-rate
// table. -check exits non-zero unless every cell flowed end to end with
// a fully signed pool ledger and the warm fork beat the cold boot;
// -artifact writes the byte-comparable artifact (the obscheck serving
// gate runs the command twice with the same seed and compares files).
func serveCmd(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "simulation seed (same seed, same artifact)")
	manifestPath := fs.String("manifest", "", "serving manifest file (default: built-in sweep)")
	artifact := fs.String("artifact", "", "write the deterministic experiment artifact to FILE")
	check := fs.Bool("check", false, "exit non-zero unless the serving invariants hold")
	fs.Parse(args)

	text := harness.ServingManifestText
	if *manifestPath != "" {
		b, err := os.ReadFile(*manifestPath)
		if err != nil {
			fail(err)
		}
		text = string(b)
	}
	rep, err := harness.RunServingManifest(text, *seed)
	if err != nil {
		fail(err)
	}
	if *artifact != "" {
		if err := os.WriteFile(*artifact, []byte(rep.Artifact()), 0o644); err != nil {
			fail(err)
		}
	}
	fmt.Print(rep.String())
	if *check {
		if err := rep.Check(); err != nil {
			fail(err)
		}
	}
}
