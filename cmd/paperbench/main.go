// Command paperbench regenerates every table and figure of the paper's
// evaluation section (§V) and prints them in the paper's layout: raw
// means with standard deviations (Figs 8 and 10) and series normalized
// to the native configuration (Figs 7 and 9), plus the selfish-detour
// summaries (Figs 4–6).
//
// Usage:
//
//	paperbench [-experiment fig4-6|fig7|fig8|fig9|fig10|all] [-trials N] [-seed S] [-sidecar DIR]
//
// With -sidecar DIR, every figure gets a metrics sidecar file in DIR
// (e.g. fig7-8.stream.kitten.metrics): the node's full observability
// snapshot from the first trial of the cell, in `khsim metrics` text
// format.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"khsim/internal/harness"
	"khsim/internal/metrics"
	"khsim/internal/sim"
	"khsim/internal/workload"
)

func main() {
	experiment := flag.String("experiment", "all", "fig4-6, fig7, fig8, fig9, fig10, extensions or all")
	trials := flag.Int("trials", 10, "trials per cell")
	seed := flag.Uint64("seed", 1, "simulation seed")
	seconds := flag.Float64("seconds", 30, "selfish-detour spin seconds")
	sidecar := flag.String("sidecar", "", "directory for per-figure metrics sidecar files (empty: none)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
		os.Exit(1)
	}
	if *sidecar != "" {
		if err := os.MkdirAll(*sidecar, 0o755); err != nil {
			fail(err)
		}
	}
	// writeSidecar stores one snapshot next to the figure it accompanies,
	// e.g. fig7-8.stream.kitten.metrics.
	writeSidecar := func(name string, snap *metrics.Snapshot) {
		if *sidecar == "" || snap == nil {
			return
		}
		f, err := os.Create(filepath.Join(*sidecar, name+".metrics"))
		if err != nil {
			fail(err)
		}
		if err := snap.WriteText(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	writeTableSidecars := func(prefix string, tab *harness.Table) {
		for _, bench := range tab.Benches {
			for _, cfg := range harness.Configs {
				writeSidecar(fmt.Sprintf("%s.%s.%s", prefix, bench, cfg), tab.Sidecars[bench][cfg])
			}
		}
	}
	wantSelfish := *experiment == "all" || *experiment == "fig4-6"
	wantMicro := *experiment == "all" || *experiment == "fig7" || *experiment == "fig8"
	wantNAS := *experiment == "all" || *experiment == "fig9" || *experiment == "fig10"
	wantExt := *experiment == "all" || *experiment == "extensions"
	if !wantSelfish && !wantMicro && !wantNAS && !wantExt {
		fail(fmt.Errorf("unknown experiment %q", *experiment))
	}

	if wantSelfish {
		res, snaps, err := harness.SelfishExperimentMetrics(*seed, sim.FromSeconds(*seconds))
		if err != nil {
			fail(err)
		}
		for _, cfg := range harness.Configs {
			writeSidecar(fmt.Sprintf("fig4-6.%s", cfg), snaps[cfg])
		}
		fmt.Print(harness.FormatSelfish(res))
		fmt.Println()
	}
	if wantMicro {
		tab, err := harness.MicroExperiment(*trials, *seed)
		if err != nil {
			fail(err)
		}
		writeTableSidecars("fig7-8", tab)
		if *experiment != "fig8" {
			fmt.Print(tab.FormatNormalized()) // Fig 7
			fmt.Println()
		}
		if *experiment != "fig7" {
			fmt.Print(tab.Format()) // Fig 8
			fmt.Println()
		}
	}
	if wantNAS {
		tab, err := harness.NASExperiment(*trials, *seed)
		if err != nil {
			fail(err)
		}
		writeTableSidecars("fig9-10", tab)
		if *experiment != "fig10" {
			fmt.Print(tab.FormatNormalized()) // Fig 9
			fmt.Println()
		}
		if *experiment != "fig9" {
			fmt.Print(tab.Format()) // Fig 10
			fmt.Println()
		}
	}
	if wantExt {
		fmt.Println("Extensions (paper §VII future work)")
		spec := workload.NASEP()
		for _, vcpus := range []int{1, 2, 4} {
			agg, speedup, err := harness.RunParallelWorkload(harness.KittenVM, spec, vcpus, *seed)
			if err != nil {
				fail(err)
			}
			fmt.Printf("  parallel %d vcpu: %8.4f %s  speedup %.3f\n",
				vcpus, agg.Rate, agg.Units, speedup)
		}
		for _, c := range []struct {
			cfg      harness.Config
			sameCore bool
			label    string
		}{
			{harness.KittenVM, false, "kitten, hog on another core"},
			{harness.KittenVM, true, "kitten, hog sharing the core"},
			{harness.LinuxVM, false, "linux,  hog on another core"},
			{harness.LinuxVM, true, "linux,  hog sharing the core"},
		} {
			res, err := harness.RunInterference(c.cfg, spec, *seed, c.sameCore)
			if err != nil {
				fail(err)
			}
			fmt.Printf("  interference (%s): slowdown %.3f\n", c.label, res.Slowdown())
		}
		for _, rate := range []sim.Hertz{0, 100, 1000, 5000} {
			res, err := harness.RunDeviceNoise(harness.KittenVM, spec, rate, *seed)
			if err != nil {
				fail(err)
			}
			fmt.Printf("  device IRQs @%5.0f Hz: stolen %.4f%%  (%d IRQs forwarded)\n",
				float64(rate), 100*float64(res.Result.Stolen)/float64(res.Result.Elapsed), res.IRQsRaised)
		}
	}
}
