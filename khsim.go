// Package khsim is a simulation-backed reproduction of "Low Overhead
// Security Isolation using Lightweight Kernels and TEEs" (Lange, Gordon,
// Gaines — SC 2021): the Kitten lightweight kernel integrated with the
// Hafnium secure partition manager on ARM64, evaluated against a Linux
// scheduler VM baseline.
//
// The package is a facade over the internal substrates:
//
//   - a deterministic discrete-event model of a Pine-A64-class ARMv8 node
//     (cores, GIC, generic timers, two-stage MMU, TrustZone, measured boot),
//   - the Hafnium hypervisor model with primary / secondary /
//     super-secondary partitions and FFA-style memory sharing,
//   - Kitten and Linux kernel models for the scheduling VM,
//   - the paper's benchmarks (selfish-detour, STREAM, RandomAccess, HPCG,
//     NAS LU/BT/CG/EP/SP) as calibrated workload models plus real,
//     verifying Go implementations,
//   - and the harness that regenerates every figure and table of the
//     paper's evaluation (run `go test -bench=.` or cmd/paperbench).
//
// Quick start:
//
//	opts := khsim.Options{Seed: 1, Manifest: manifestText,
//	    Scheduler: khsim.SchedulerKitten}
//	node, err := khsim.NewSecureNode(opts)
//	...
//	guest := khsim.NewKittenGuest()
//	guest.Attach(0, myWorkload)           // any osapi.Process
//	node.AttachGuest("job", guest)
//	node.Boot()
//	node.Run(khsim.Seconds(10))
//
// See examples/ for complete programs.
package khsim

import (
	"khsim/internal/core"
	"khsim/internal/harness"
	"khsim/internal/kitten"
	"khsim/internal/linuxos"
	"khsim/internal/noise"
	"khsim/internal/sim"
	"khsim/internal/stats"
	"khsim/internal/workload"
)

// Node assembly (see internal/core for full documentation).
type (
	// Options configure a secure node (manifest, scheduler, keys).
	Options = core.Options
	// SecureNode is the paper's system: Hafnium + a scheduling VM.
	SecureNode = core.SecureNode
	// NativeNode is bare-metal Kitten, the evaluation baseline.
	NativeNode = core.NativeNode
	// Scheduler selects the primary VM's kernel.
	Scheduler = core.Scheduler
)

// Scheduler choices.
const (
	SchedulerKitten = core.SchedulerKitten
	SchedulerLinux  = core.SchedulerLinux
)

// NewSecureNode assembles machine, TrustZone, measured boot, Hafnium and
// the selected primary kernel.
func NewSecureNode(opts Options) (*SecureNode, error) { return core.NewSecureNode(opts) }

// NewNativeNode builds and starts a bare-metal Kitten node.
func NewNativeNode(seed uint64, params kitten.Params) (*NativeNode, error) {
	return core.NewNativeNode(seed, params)
}

// Guest kernels.

// NewKittenGuest returns a Kitten guest kernel with default parameters.
func NewKittenGuest() *kitten.Guest { return kitten.NewGuest(kitten.DefaultParams()) }

// NewLinuxGuest returns a Linux guest kernel (the login-VM role).
func NewLinuxGuest(seed uint64) *linuxos.Guest {
	return linuxos.NewGuest(linuxos.DefaultParams(), seed)
}

// Evaluation harness.
type (
	// EvalConfig is one of the paper's three configurations.
	EvalConfig = harness.Config
	// SelfishResult is a selfish-detour noise profile.
	SelfishResult = noise.SelfishResult
	// WorkloadSpec is a calibrated benchmark model.
	WorkloadSpec = workload.Spec
	// ResultTable is a benchmark × configuration matrix.
	ResultTable = harness.Table
	// Summary is a mean/stdev snapshot.
	Summary = stats.Summary
)

// The three evaluation configurations (§V).
const (
	Native   = harness.Native
	KittenVM = harness.KittenVM
	LinuxVM  = harness.LinuxVM
)

// RunSelfish runs the selfish-detour benchmark (Figs 4–6).
func RunSelfish(cfg EvalConfig, seed uint64, runTime sim.Duration) (*SelfishResult, error) {
	return harness.RunSelfish(cfg, seed, runTime)
}

// RunWorkload runs one benchmark trial (Figs 7–10).
func RunWorkload(cfg EvalConfig, spec WorkloadSpec, seed uint64) (workload.Result, error) {
	return harness.RunWorkload(cfg, spec, seed)
}

// MicroExperiment regenerates Fig 7/8; NASExperiment regenerates Fig 9/10.
func MicroExperiment(trials int, seed uint64) (*ResultTable, error) {
	return harness.MicroExperiment(trials, seed)
}

// NASExperiment regenerates the NAS table (Fig 9/10).
func NASExperiment(trials int, seed uint64) (*ResultTable, error) {
	return harness.NASExperiment(trials, seed)
}

// Benchmarks returns the calibrated specs for all eight paper benchmarks.
func Benchmarks() []WorkloadSpec { return workload.All() }

// Time helpers.

// Seconds converts seconds to simulated duration.
func Seconds(s float64) sim.Duration { return sim.FromSeconds(s) }

// Micros converts microseconds to simulated duration.
func Micros(us float64) sim.Duration { return sim.FromMicros(us) }
