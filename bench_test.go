package khsim

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (§V) as Go benchmarks, one per figure, with the
// reported numbers attached as custom metrics:
//
//	go test -bench=. -benchmem
//
// Figures 4–6: BenchmarkFig4/5/6… report detours/s, mean detour µs and
// stolen-time percent. Figures 7/8: BenchmarkFig7Fig8… report the rate in
// the paper's units ×1e6 plus the native-normalized value ×1000.
// Figures 9/10: BenchmarkFig9Fig10… likewise. BenchmarkAblation… sweep
// the design choices DESIGN.md calls out. BenchmarkApp… measure the real
// (host-executed) application kernels.

import (
	"fmt"
	"testing"

	"khsim/internal/apps/gups"
	"khsim/internal/apps/hpcg"
	"khsim/internal/apps/npb"
	"khsim/internal/apps/stream"
	"khsim/internal/core"
	"khsim/internal/hafnium"
	"khsim/internal/harness"
	"khsim/internal/kitten"
	"khsim/internal/machine"
	"khsim/internal/noise"
	"khsim/internal/osapi"
	"khsim/internal/shmring"
	"khsim/internal/sim"
	"khsim/internal/workload"
)

const selfishBenchSeconds = 10

func benchSelfish(b *testing.B, cfg harness.Config) {
	b.Helper()
	var res *noise.SelfishResult
	for i := 0; i < b.N; i++ {
		r, err := harness.RunSelfish(cfg, 42, sim.FromSeconds(selfishBenchSeconds))
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.RatePerSecond(), "detours/s")
	if res.Count() > 0 {
		b.ReportMetric(res.DurationsMicros().Mean(), "mean-us")
		if max, ok := res.DurationsMicros().Max(); ok {
			b.ReportMetric(max, "max-us")
		}
	}
	b.ReportMetric(100*res.StolenFraction(), "stolen-%")
}

// BenchmarkFig4SelfishNative reproduces Fig 4: selfish-detour on native
// Kitten.
func BenchmarkFig4SelfishNative(b *testing.B) { benchSelfish(b, harness.Native) }

// BenchmarkFig5SelfishKittenVM reproduces Fig 5: a Kitten secondary VM
// under a Kitten scheduler VM.
func BenchmarkFig5SelfishKittenVM(b *testing.B) { benchSelfish(b, harness.KittenVM) }

// BenchmarkFig6SelfishLinuxVM reproduces Fig 6: a Kitten secondary VM
// under a Linux scheduler VM.
func BenchmarkFig6SelfishLinuxVM(b *testing.B) { benchSelfish(b, harness.LinuxVM) }

func benchWorkload(b *testing.B, spec workload.Spec, cfg harness.Config, baseline float64) {
	b.Helper()
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := harness.RunWorkload(cfg, spec, 3)
		if err != nil {
			b.Fatal(err)
		}
		rate = res.Rate
	}
	b.ReportMetric(rate*1e6, spec.Units+"-x1e6")
	if baseline > 0 {
		b.ReportMetric(rate/baseline*1000, "norm-x1000")
	}
}

// benchTable runs a spec across the three configurations as
// sub-benchmarks, computing the native baseline once for normalization.
func benchTable(b *testing.B, specs []workload.Spec) {
	for _, spec := range specs {
		spec := spec
		base, err := harness.RunWorkload(harness.Native, spec, 3)
		if err != nil {
			b.Fatal(err)
		}
		for _, cfg := range harness.Configs {
			cfg := cfg
			b.Run(fmt.Sprintf("%s/%s", spec.Name, cfg), func(b *testing.B) {
				benchWorkload(b, spec, cfg, base.Rate)
			})
		}
	}
}

// BenchmarkFig7Fig8Micro reproduces Figures 7 and 8: HPCG, STREAM and
// RandomAccess across the three configurations (raw rate and normalized).
func BenchmarkFig7Fig8Micro(b *testing.B) {
	benchTable(b, []workload.Spec{workload.HPCG(), workload.Stream(), workload.GUPS()})
}

// BenchmarkFig9Fig10NAS reproduces Figures 9 and 10: the NAS subset.
func BenchmarkFig9Fig10NAS(b *testing.B) {
	benchTable(b, []workload.Spec{
		workload.NASLU(), workload.NASBT(), workload.NASCG(),
		workload.NASEP(), workload.NASSP(),
	})
}

const ablationManifest = `
[vm primary]
class = primary
vcpus = 4
memory_mb = 256

[vm job]
class = secondary
vcpus = 1
memory_mb = 512
working_set_pages = 256
`

// BenchmarkAblationTickRate sweeps the primary Kitten's tick rate,
// reporting stolen time: the knob behind the LWK's noise advantage.
func BenchmarkAblationTickRate(b *testing.B) {
	for _, hz := range []sim.Hertz{10, 100, 250, 1000} {
		hz := hz
		b.Run(fmt.Sprintf("%.0fHz", float64(hz)), func(b *testing.B) {
			var res *noise.SelfishResult
			for i := 0; i < b.N; i++ {
				params := kitten.DefaultParams()
				params.TickHz = hz
				s := noise.NewSelfish(fmt.Sprintf("kitten-%vHz", hz), sim.FromSeconds(5))
				_, err := harness.RunCustom(core.Options{
					Seed: 42, Manifest: ablationManifest,
					Scheduler: core.SchedulerKitten, Kitten: params,
				}, "job", kitten.DefaultParams(), s,
					func() bool { return s.Result.Finished }, sim.FromSeconds(10))
				if err != nil {
					b.Fatal(err)
				}
				res = &s.Result
			}
			b.ReportMetric(res.RatePerSecond(), "detours/s")
			b.ReportMetric(100*res.StolenFraction(), "stolen-%")
		})
	}
}

// BenchmarkAblationTLBPolicy compares VMID-tagged TLBs against
// flush-on-switch for the TLB-hostile RandomAccess workload.
func BenchmarkAblationTLBPolicy(b *testing.B) {
	for _, tlb := range []string{"vmid-tagged", "flush-all"} {
		tlb := tlb
		b.Run(tlb, func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				spec := workload.GUPS()
				run := workload.New(spec, workload.Env{TwoStage: true, RNG: sim.NewRNG(3)})
				_, err := harness.RunCustom(core.Options{
					Seed: 42, Manifest: "tlb = " + tlb + "\n" + ablationManifest,
					Scheduler: core.SchedulerLinux,
				}, "job", kitten.DefaultParams(), run,
					func() bool { return run.Result.Finished }, sim.FromSeconds(20))
				if err != nil {
					b.Fatal(err)
				}
				rate = run.Result.Rate
			}
			b.ReportMetric(rate*1e6, "GUP/s-x1e6")
		})
	}
}

// BenchmarkAblationIRQRouting compares the paper's forward-via-primary
// device-interrupt path against the §VII future-work selective routing,
// reporting delivery latency into the super-secondary login VM.
func BenchmarkAblationIRQRouting(b *testing.B) {
	manifest := func(routing string) string {
		return `routing = ` + routing + `

[vm primary]
class = primary
vcpus = 4
memory_mb = 256

[vm login]
class = super-secondary
vcpus = 1
memory_mb = 128
`
	}
	const nicIRQ = 45
	for _, routing := range []string{"via-primary", "selective"} {
		routing := routing
		b.Run(routing, func(b *testing.B) {
			var latency sim.Duration
			for i := 0; i < b.N; i++ {
				n, err := core.NewSecureNode(core.Options{
					Seed: 42, Manifest: manifest(routing), Scheduler: core.SchedulerKitten,
				})
				if err != nil {
					b.Fatal(err)
				}
				guest := kitten.NewGuest(kitten.DefaultParams())
				var handledAt sim.Time
				guest.OnDeviceIRQ = func(vc *hafnium.VCPU, virq int) { handledAt = vc.Now() }
				// Keep the login VM resident on core 1 so the two routing
				// policies actually differ (a blocked VM degenerates both
				// paths to the wakeup flow).
				guest.Attach(0, noise.NewSelfish("login-busy", sim.FromSeconds(30)))
				if err := n.AttachGuest("login", guest, 1); err != nil {
					b.Fatal(err)
				}
				if err := n.Boot(); err != nil {
					b.Fatal(err)
				}
				// Keep the login VM resident, then fire the device IRQ at
				// its core and measure delivery latency.
				n.Run(sim.FromSeconds(0.05))
				n.Machine.GIC.Enable(nicIRQ)
				target := 1
				if routing == "via-primary" {
					target = 0 // SPIs land on the primary's core first
				}
				n.Machine.GIC.Route(nicIRQ, target)
				raisedAt := n.Machine.Now()
				n.Machine.GIC.RaiseSPI(nicIRQ)
				n.Run(sim.FromSeconds(0.5))
				if handledAt == 0 {
					b.Fatal("device IRQ never reached the login VM")
				}
				latency = handledAt.Sub(raisedAt)
			}
			b.ReportMetric(latency.Micros(), "delivery-us")
		})
	}
}

// Real application kernels, executed on the host (these measure this
// machine, not the simulated Pine A64 — they validate the numerics the
// workload models represent).

// BenchmarkAppStreamTriad measures the real STREAM triad kernel.
func BenchmarkAppStreamTriad(b *testing.B) {
	d := stream.New(1 << 20)
	b.ResetTimer()
	var bytes uint64
	for i := 0; i < b.N; i++ {
		bytes += d.Triad()
	}
	b.SetBytes(int64(bytes / uint64(b.N)))
}

// BenchmarkAppGUPS measures the real RandomAccess update loop.
func BenchmarkAppGUPS(b *testing.B) {
	tb, err := gups.New(20)
	if err != nil {
		b.Fatal(err)
	}
	start := gups.Starts(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start = tb.Update(start, 1<<16)
	}
	b.ReportMetric(float64(b.N)*float64(1<<16)/b.Elapsed().Seconds()*1e-9, "GUP/s")
}

// BenchmarkAppHPCG measures one preconditioned-CG iteration set.
func BenchmarkAppHPCG(b *testing.B) {
	p, err := hpcg.NewProblem(24, 24, 24)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var flops float64
	for i := 0; i < b.N; i++ {
		res, err := p.Solve(10, 0)
		if err != nil {
			b.Fatal(err)
		}
		flops = res.FLOPs
	}
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()*1e-9, "GFlop/s")
}

// BenchmarkAppEP measures the real NPB EP kernel (2^18 pairs per op).
func BenchmarkAppEP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := npb.EP(18)
		if r.Count == 0 {
			b.Fatal("no pairs accepted")
		}
	}
}

// BenchmarkAppNPBCG measures the real NPB CG loop.
func BenchmarkAppNPBCG(b *testing.B) {
	m, err := npb.NewCGMatrix(700, 10, 20)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		npb.RunCG(m, 20, 3, 15)
	}
}

// BenchmarkAppLUSSOR measures the real SSOR wavefront sweep.
func BenchmarkAppLUSSOR(b *testing.B) {
	g, err := npb.NewGrid3D(24, 24, 24)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		npb.LUSSOR(g, 2, 1.2)
	}
}

// BenchmarkAppADI measures the scalar and block ADI sweeps.
func BenchmarkAppADI(b *testing.B) {
	b.Run("sp-scalar", func(b *testing.B) {
		g, _ := npb.NewGrid3D(24, 24, 24)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			npb.SPADI(g, 2)
		}
	})
	b.Run("bt-block", func(b *testing.B) {
		st, _ := npb.NewBTState(24, 24, 24, 5)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			npb.BTADI(st, 2)
		}
	})
}

// Extension benchmarks: the paper's §VII future-work directions.

// BenchmarkExtensionParallelScaling measures multi-VCPU scaling of a
// compute-bound workload across 1–4 VCPUs under a Kitten primary.
func BenchmarkExtensionParallelScaling(b *testing.B) {
	for _, vcpus := range []int{1, 2, 4} {
		vcpus := vcpus
		b.Run(fmt.Sprintf("%dvcpu", vcpus), func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				_, sp, err := harness.RunParallelWorkload(harness.KittenVM, workload.NASEP(), vcpus, 5)
				if err != nil {
					b.Fatal(err)
				}
				speedup = sp
			}
			b.ReportMetric(speedup, "speedup")
		})
	}
}

// BenchmarkExtensionInterference measures performance isolation: a
// victim benchmark with a CPU-hog VM on another core vs sharing its core,
// under both schedulers.
func BenchmarkExtensionInterference(b *testing.B) {
	cases := []struct {
		name     string
		cfg      harness.Config
		sameCore bool
	}{
		{"kitten/cross-core", harness.KittenVM, false},
		{"kitten/same-core", harness.KittenVM, true},
		{"linux/cross-core", harness.LinuxVM, false},
		{"linux/same-core", harness.LinuxVM, true},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var slowdown float64
			for i := 0; i < b.N; i++ {
				res, err := harness.RunInterference(c.cfg, workload.NASEP(), 7, c.sameCore)
				if err != nil {
					b.Fatal(err)
				}
				slowdown = res.Slowdown()
			}
			b.ReportMetric(slowdown, "slowdown")
		})
	}
}

// BenchmarkExtensionDeviceNoise sweeps device-interrupt rates hitting the
// benchmark's core with the paper's forward-via-primary routing — the
// cost of not having selective routing (§VII).
func BenchmarkExtensionDeviceNoise(b *testing.B) {
	for _, rate := range []sim.Hertz{0, 100, 1000, 5000} {
		rate := rate
		b.Run(fmt.Sprintf("%.0fHz", float64(rate)), func(b *testing.B) {
			var stolenPct float64
			for i := 0; i < b.N; i++ {
				res, err := harness.RunDeviceNoise(harness.KittenVM, workload.NASEP(), rate, 3)
				if err != nil {
					b.Fatal(err)
				}
				stolenPct = 100 * float64(res.Result.Stolen+res.Result.Extra) / float64(res.Result.Elapsed)
			}
			b.ReportMetric(stolenPct, "stolen-%")
		})
	}
}

// BenchmarkAblationWorldSwitchCost sweeps the EL2 world-switch cost (the
// dominant virtualization overhead term) and reports the mean detour a
// secondary VM sees from each primary tick.
func BenchmarkAblationWorldSwitchCost(b *testing.B) {
	for _, cycles := range []float64{1000, 3200, 10000, 32000} {
		cycles := cycles
		b.Run(fmt.Sprintf("%.0fcy", cycles), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				mcfg := machine.PineA64Config(42)
				mcfg.Costs.WorldSwitch = sim.Cycles(cycles, mcfg.Freq)
				s := noise.NewSelfish("ws-sweep", sim.FromSeconds(5))
				_, err := harness.RunCustom(core.Options{
					Seed: 42, Manifest: ablationManifest,
					Scheduler: core.SchedulerKitten, Machine: &mcfg,
				}, "job", kitten.DefaultParams(), s,
					func() bool { return s.Result.Finished }, sim.FromSeconds(10))
				if err != nil {
					b.Fatal(err)
				}
				mean = s.Result.DurationsMicros().Mean()
			}
			b.ReportMetric(mean, "mean-detour-us")
		})
	}
}

// BenchmarkExtensionGuestKernel compares the kernel *inside* the workload
// VM: the LWK thesis applies at both layers — a Linux guest brings its
// own tick and kthreads into the secure partition.
func BenchmarkExtensionGuestKernel(b *testing.B) {
	for _, guest := range []harness.GuestKernel{harness.GuestKitten, harness.GuestLinux} {
		guest := guest
		b.Run(guest.String(), func(b *testing.B) {
			var stolenPct float64
			for i := 0; i < b.N; i++ {
				res, err := harness.RunWorkloadGuest(harness.KittenVM, guest, workload.NASEP(), 3)
				if err != nil {
					b.Fatal(err)
				}
				stolenPct = 100 * float64(res.Stolen) / float64(res.Elapsed)
			}
			b.ReportMetric(stolenPct, "stolen-%")
		})
	}
}

// BenchmarkExtensionSharedRing measures the secure shared-memory channel
// (internal/shmring): producer→consumer throughput across message sizes,
// with one doorbell per message. The data plane is hypervisor-free; only
// doorbells that find the consumer asleep cost world switches.
func BenchmarkExtensionSharedRing(b *testing.B) {
	for _, size := range []int{256, 4096, 65536} {
		size := size
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				n, err := core.NewSecureNode(core.Options{
					Seed: 13, Manifest: `
[vm primary]
class = primary
vcpus = 4
memory_mb = 128

[vm producer]
class = secondary
vcpus = 1
memory_mb = 128

[vm consumer]
class = secondary
vcpus = 1
memory_mb = 128
`, Scheduler: core.SchedulerKitten,
				})
				if err != nil {
					b.Fatal(err)
				}
				producer, _ := n.Hyp.VMByName("producer")
				consumer, _ := n.Hyp.VMByName("consumer")
				prodG := kitten.NewGuest(kitten.DefaultParams())
				consG := kitten.NewGuest(kitten.DefaultParams())
				base, _ := producer.RAM()
				// Guests must be attached before boot; the ring needs the
				// hypervisor, which exists now.
				ring, err := shmring.Create(n.Hyp, producer.ID(), consumer.ID(), base, 32, 64<<10)
				if err != nil {
					b.Fatal(err)
				}
				const count = 200
				var firstPush, lastRecv sim.Time
				got := 0
				consG.OnNotification = func(vc *hafnium.VCPU) {
					ring.Drain(vc, func(p []byte) {
						got++
						lastRecv = vc.Now()
					}, func(int) {})
				}
				payload := make([]byte, size)
				prodG.Attach(0, osapi.Func{Label: "pusher", Body: func(x osapi.Executor) {
					firstPush = x.Now()
					var push func(i int)
					push = func(i int) {
						if i == count {
							x.Done()
							return
						}
						ring.Push(producer.VCPU(0), payload, true, func(err error) {
							if err != nil {
								// Ring full: retry after a short spin.
								x.Exec("backoff", sim.FromMicros(5), func() { push(i) })
								return
							}
							push(i + 1)
						})
					}
					push(0)
				}})
				if err := n.AttachGuest("producer", prodG, 0); err != nil {
					b.Fatal(err)
				}
				if err := n.AttachGuest("consumer", consG, 1); err != nil {
					b.Fatal(err)
				}
				if err := n.Boot(); err != nil {
					b.Fatal(err)
				}
				n.Run(sim.FromSeconds(30))
				if got != count {
					b.Fatalf("received %d/%d", got, count)
				}
				mbps = float64(size*count) / lastRecv.Sub(firstPush).Seconds() / 1e6
			}
			b.ReportMetric(mbps, "MB/s")
		})
	}
}
