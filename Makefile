# Tier-1 gate plus the stricter checks CI runs.

GO ?= go

.PHONY: build test check vet race bench

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the full pre-merge gate: build, vet, and the test suite under
# the race detector.
check: build vet race

bench:
	$(GO) test -bench=. -benchtime=1x ./...
