# Tier-1 gate plus the stricter checks CI runs.

GO ?= go

.PHONY: build test check vet race race-core bench benchcheck gobench lint obscheck

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# race-core is the focused race gate over the packages the parallel
# cluster engine actually shares between goroutines: the event engine,
# the fabric's deferred-send windows, and the cluster window scheduler.
race-core:
	$(GO) test -race ./internal/sim/... ./internal/net/... ./internal/machine/...

# lint is the CI formatting/static gate, reproducible locally: gofmt
# must report no files, vet must pass, every exported identifier in the
# core packages must carry a doc comment, and ARCHITECTURE.md's package
# table must cover every internal/ package (cmd/docgate -arch).
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/docgate -arch ARCHITECTURE.md -internal internal \
		./internal/sim ./internal/metrics ./internal/faults ./internal/kernel ./internal/serve

# obscheck is the observability gate: the metrics snapshot must be
# deterministic across same-seed runs, the Perfetto trace export must
# pass schema validation (khsim trace -check exits non-zero otherwise),
# the cluster failover experiment must hold its properties (bounded
# failover, converged ledgers) with a byte-identical merged trace
# artifact across two same-seed runs, and the snapshot/fork contract
# must hold: forked timelines replay bit-identically (khsim snapshot
# -check), with the experiment artifact itself byte-identical across
# two same-seed processes. The live-migration experiment joins the same
# contract: khsim migrate -check must hold its invariants (one live
# copy per cell, converged signed ledger, downtime monotone in working
# set) and two same-seed runs must render byte-identical artifacts.
# The conservative parallel engine carries the strongest form of the
# contract: same-seed artifacts must be byte-identical sequential vs
# parallel (3 and 8 nodes) and parallel vs parallel (8 nodes), so the
# goroutine schedule leaves no fingerprint. The ephemeral-VM serving
# sweep closes the list: khsim serve -check must hold its invariants
# (end-to-end job flow, fully signed pool ledger, warm fork beating
# cold boot) and two same-seed sweeps must write byte-identical
# artifacts.
obscheck: build
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/khsim metrics -config kitten -bench stream -seed 1 > "$$tmp/a.metrics" && \
	$(GO) run ./cmd/khsim metrics -config kitten -bench stream -seed 1 > "$$tmp/b.metrics" && \
	cmp "$$tmp/a.metrics" "$$tmp/b.metrics" || { echo "obscheck: metrics snapshot not deterministic"; exit 1; }; \
	$(GO) run ./cmd/khsim trace -config kitten -bench selfish -seconds 0.1 -format perfetto -check -out "$$tmp/trace.json" || exit 1; \
	$(GO) run ./cmd/khsim cluster -seed 1 -check -artifact "$$tmp/a.cluster" > /dev/null && \
	$(GO) run ./cmd/khsim cluster -seed 1 -check -artifact "$$tmp/b.cluster" > /dev/null && \
	cmp "$$tmp/a.cluster" "$$tmp/b.cluster" || { echo "obscheck: cluster failover trace not deterministic"; exit 1; }; \
	$(GO) run ./cmd/khsim snapshot -seed 1 -check -artifact "$$tmp/a.snap" > /dev/null && \
	$(GO) run ./cmd/khsim snapshot -seed 1 -check -artifact "$$tmp/b.snap" > /dev/null && \
	cmp "$$tmp/a.snap" "$$tmp/b.snap" || { echo "obscheck: snapshot fork replay not deterministic"; exit 1; }; \
	$(GO) run ./cmd/khsim migrate -seed 1 -check -artifact "$$tmp/a.mig" > /dev/null && \
	$(GO) run ./cmd/khsim migrate -seed 1 -check -artifact "$$tmp/b.mig" > /dev/null && \
	cmp "$$tmp/a.mig" "$$tmp/b.mig" || { echo "obscheck: migration artifact not deterministic"; exit 1; }; \
	$(GO) run ./cmd/khsim cluster -seed 1 -parallel -check -artifact "$$tmp/p3.cluster" > /dev/null && \
	cmp "$$tmp/a.cluster" "$$tmp/p3.cluster" || { echo "obscheck: 3-node parallel run diverges from sequential"; exit 1; }; \
	$(GO) run ./cmd/khsim cluster -seed 1 -nodes 8 -artifact "$$tmp/s8.cluster" > /dev/null && \
	$(GO) run ./cmd/khsim cluster -seed 1 -nodes 8 -parallel -check -artifact "$$tmp/p8a.cluster" > /dev/null && \
	$(GO) run ./cmd/khsim cluster -seed 1 -nodes 8 -parallel -artifact "$$tmp/p8b.cluster" > /dev/null && \
	cmp "$$tmp/s8.cluster" "$$tmp/p8a.cluster" || { echo "obscheck: 8-node parallel run diverges from sequential"; exit 1; }; \
	cmp "$$tmp/p8a.cluster" "$$tmp/p8b.cluster" || { echo "obscheck: 8-node parallel runs diverge from each other"; exit 1; }; \
	$(GO) run ./cmd/khsim serve -seed 1 -check -artifact "$$tmp/a.serve" > /dev/null && \
	$(GO) run ./cmd/khsim serve -seed 1 -check -artifact "$$tmp/b.serve" > /dev/null && \
	cmp "$$tmp/a.serve" "$$tmp/b.serve" || { echo "obscheck: serving artifact not deterministic"; exit 1; }; \
	echo "obscheck: ok"

# check is the full pre-merge gate: build, vet, the test suite under the
# race detector, and the observability gate.
check: build vet race obscheck

# bench refreshes the committed engine-throughput trajectory
# (BENCH_sim.json), preserving its pinned pre-optimization baseline
# block. benchcheck is the CI regression gate against the committed file.
bench:
	$(GO) run ./cmd/benchjson -out BENCH_sim.json

benchcheck:
	$(GO) run ./cmd/benchjson -reps 5 -check BENCH_sim.json

# gobench runs the paper-figure go-test benchmarks (bench_test.go).
gobench:
	$(GO) test -bench=. -benchtime=1x ./...
