# Tier-1 gate plus the stricter checks CI runs.

GO ?= go

.PHONY: build test check vet race bench lint

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# lint is the CI formatting/static gate, reproducible locally: gofmt
# must report no files, and vet must pass.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

# check is the full pre-merge gate: build, vet, and the test suite under
# the race detector.
check: build vet race

bench:
	$(GO) test -bench=. -benchtime=1x ./...
