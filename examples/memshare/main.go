// Memshare exercises Hafnium's FFA-style memory management between
// isolated partitions: share, lend, donate and reclaim, with the
// stage-2 isolation invariant checked after every operation — the
// property the paper's security argument rests on ("neither Kitten nor
// any other OS instance can access the memory contents of another OS/R
// environment").
package main

import (
	"fmt"
	"log"

	"khsim"
	"khsim/internal/hafnium"
	"khsim/internal/mem"
	"khsim/internal/mmu"
)

const manifest = `
[vm primary]
class = primary
vcpus = 4
memory_mb = 128

[vm producer]
class = secondary
vcpus = 1
memory_mb = 128

[vm consumer]
class = secondary
vcpus = 1
memory_mb = 128
`

func main() {
	node, err := khsim.NewSecureNode(khsim.Options{
		Seed: 3, Manifest: manifest, Scheduler: khsim.SchedulerKitten,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"producer", "consumer"} {
		if err := node.AttachGuest(name, khsim.NewKittenGuest()); err != nil {
			log.Fatal(err)
		}
	}
	if err := node.Boot(); err != nil {
		log.Fatal(err)
	}

	h := node.Hyp
	producer, _ := h.VMByName("producer")
	consumer, _ := h.VMByName("consumer")
	base, _ := producer.RAM()

	check := func(step string) {
		if err := h.VerifyIsolation(); err != nil {
			log.Fatalf("%s: isolation violated: %v", step, err)
		}
		fmt.Printf("%-28s isolation invariant holds ✔\n", step)
	}
	check("boot")

	// Before any grant, the consumer cannot reach the producer's frames.
	pa, _ := producer.TranslateIPA(base, mmu.PermR)
	fmt.Printf("producer frame %#x owned by VM %d\n", uint64(pa), h.FrameOwner(pa))

	// SHARE: both sides see the buffer.
	toIPA, grant, err := h.ShareMemory(hafnium.MemShare, producer.ID(), consumer.ID(),
		base, 4*mem.PageSize, mmu.PermRW)
	if err != nil {
		log.Fatal(err)
	}
	cpa, err := consumer.TranslateIPA(toIPA, mmu.PermRW)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shared 16KiB: consumer IPA %#x → PA %#x (same frames: %v)\n",
		toIPA, uint64(cpa), cpa == pa)
	check("after share")

	// RECLAIM: consumer loses access.
	if err := h.ReclaimMemory(producer.ID(), grant); err != nil {
		log.Fatal(err)
	}
	if _, err := consumer.TranslateIPA(toIPA, mmu.PermR); err != nil {
		fmt.Printf("after reclaim, consumer access faults ✔ (%v)\n", err)
	} else {
		log.Fatal("consumer kept access after reclaim")
	}
	check("after reclaim")

	// LEND: exclusive handoff — the producer itself loses access.
	toIPA, grant, err = h.ShareMemory(hafnium.MemLend, producer.ID(), consumer.ID(),
		base, 2*mem.PageSize, mmu.PermRW)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := producer.TranslateIPA(base, mmu.PermR); err != nil {
		fmt.Printf("lend revoked the owner's mapping ✔ (%v)\n", err)
	} else {
		log.Fatal("owner kept access to lent memory")
	}
	check("after lend")
	if err := h.ReclaimMemory(producer.ID(), grant); err != nil {
		log.Fatal(err)
	}
	check("after lend reclaim")

	// DONATE: permanent ownership transfer.
	_, _, err = h.ShareMemory(hafnium.MemDonate, producer.ID(), consumer.ID(),
		base+8*mem.PageSize, mem.PageSize, mmu.PermRWX)
	if err != nil {
		log.Fatal(err)
	}
	donated := pa + 8*mem.PageSize
	fmt.Printf("donated frame now owned by VM %d (was %d)\n",
		h.FrameOwner(donated), producer.ID())
	check("after donate")

	// Forbidden: granting frames you do not own.
	if _, _, err := h.ShareMemory(hafnium.MemShare, producer.ID(), consumer.ID(),
		base+8*mem.PageSize, mem.PageSize, mmu.PermR); err != nil {
		fmt.Printf("re-granting donated memory rejected ✔ (%v)\n", err)
	} else {
		log.Fatal("granted memory the sender no longer owns")
	}
	_ = toIPA
}
