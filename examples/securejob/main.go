// Securejob demonstrates the paper's full §III architecture: a Kitten
// primary schedules the node; a semi-privileged Linux *super-secondary*
// "login VM" owns the devices and submits job-control commands over the
// secure mailbox channel; secure workload VMs are stopped and restarted
// by the primary's control task on the login VM's behalf; and a device
// interrupt reaches the login VM through the primary's forwarding path.
package main

import (
	"fmt"
	"log"

	"khsim"
	"khsim/internal/hafnium"
	"khsim/internal/sim"
	"khsim/internal/workload"
)

const manifest = `
[vm kitten]
class = primary
vcpus = 4
memory_mb = 256

[vm login]
class = super-secondary
vcpus = 1
memory_mb = 256

[vm job0]
class = secondary
vcpus = 1
memory_mb = 512
`

func main() {
	node, err := khsim.NewSecureNode(khsim.Options{
		Seed: 7, Manifest: manifest, Scheduler: khsim.SchedulerKitten,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The login VM: Linux guest with a job-control "shell" that reacts to
	// mailbox replies, and a driver hook for forwarded device IRQs.
	login := khsim.NewLinuxGuest(7)
	login.OnMessage = func(vc *hafnium.VCPU, msg hafnium.Message) {
		fmt.Printf("[%7.3fs] login VM received: %q\n", vc.Now().Seconds(), msg.Payload)
	}
	login.OnDeviceIRQ = func(vc *hafnium.VCPU, virq int) {
		fmt.Printf("[%7.3fs] login VM driver handled device IRQ %d\n", vc.Now().Seconds(), virq)
	}
	if err := node.AttachGuest("login", login, 1); err != nil {
		log.Fatal(err)
	}

	// The workload VM: HPCG under a Kitten guest kernel.
	run := workload.New(workload.HPCG(), workload.Env{TwoStage: true, RNG: sim.NewRNG(7)})
	job := khsim.NewKittenGuest()
	job.Attach(0, run)
	if err := node.AttachGuest("job0", job, 0); err != nil {
		log.Fatal(err)
	}

	if err := node.Boot(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("booted: Kitten primary, Linux login VM (devices), job0 secondary")

	// The login VM queries job status over the mailbox channel; the
	// primary's control task answers. (In the guest this send happens
	// from its shell; we drive it from the host side of the simulation.)
	loginVM := node.Hyp.Super()
	send := func(cmd string) {
		if err := loginVM.VCPU(0).SendMessage(hafnium.PrimaryID, []byte(cmd)); err != nil {
			log.Fatalf("send %q: %v", cmd, err)
		}
		node.Run(sim.FromSeconds(0.2))
	}
	node.Run(sim.FromSeconds(0.5))
	send("status job0")

	// A storage interrupt fires; Hafnium routes it to the primary, which
	// forwards it to the login VM (the paper's current routing).
	const mmcIRQ = 44
	node.Machine.GIC.Enable(mmcIRQ)
	node.Machine.GIC.Route(mmcIRQ, 0)
	node.Machine.GIC.RaiseSPI(mmcIRQ)
	node.Run(sim.FromSeconds(0.3))

	// Let the HPCG job finish, then stop and restart it via job control.
	node.Run(sim.FromSeconds(6))
	fmt.Printf("[%7.3fs] job0 result: %s\n", node.Machine.Now().Seconds(), run.Result)
	send("stop job0")
	send("status job0")
	send("start job0")
	send("status job0")

	st := node.Hyp.Stats()
	fmt.Printf("totals: %d world switches, %d mailbox messages, %d forwarded IRQs\n",
		st.WorldSwitches, st.Messages, st.Forwards)
}
