// Quickstart: boot the paper's system — Hafnium with Kitten as the
// primary scheduling VM — and run the STREAM benchmark model inside an
// isolated secondary VM.
package main

import (
	"fmt"
	"log"

	"khsim"
	"khsim/internal/sim"
	"khsim/internal/workload"
)

const manifest = `
[vm primary]
class = primary
vcpus = 4
memory_mb = 256

[vm job]
class = secondary
vcpus = 1
memory_mb = 512
`

func main() {
	// 1. Assemble the node: machine, TrustZone, measured boot, Hafnium,
	//    Kitten primary.
	node, err := khsim.NewSecureNode(khsim.Options{
		Seed:      1,
		Manifest:  manifest,
		Scheduler: khsim.SchedulerKitten,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Put a workload in the job VM: a Kitten guest kernel running the
	//    calibrated STREAM model under two-stage translation.
	run := workload.New(workload.Stream(), workload.Env{TwoStage: true, RNG: sim.NewRNG(1)})
	guest := khsim.NewKittenGuest()
	guest.Attach(0, run)
	if err := node.AttachGuest("job", guest); err != nil {
		log.Fatal(err)
	}

	// 3. Boot and simulate.
	if err := node.Boot(); err != nil {
		log.Fatal(err)
	}
	node.Run(khsim.Seconds(10))

	// 4. Report.
	if !run.Result.Finished {
		log.Fatal("workload did not finish")
	}
	fmt.Printf("STREAM in a secure VM under a Kitten scheduler:\n  %s\n", run.Result)
	st := node.Hyp.Stats()
	fmt.Printf("hypervisor activity: %d traps, %d world switches, %d injections\n",
		st.Traps, st.WorldSwitches, st.Injections)
	att, _ := node.Attestation()
	fmt.Printf("attested boot PCR: %x...\n", att.PCR[:8])
}
