// Noiseprofile compares the OS-noise signature of the paper's three
// configurations with the selfish-detour benchmark and prints an ASCII
// rendition of Figures 4–6: detour-duration histograms plus the headline
// statistics.
package main

import (
	"fmt"
	"log"
	"strings"

	"khsim"
	"khsim/internal/stats"
)

func main() {
	configs := []khsim.EvalConfig{khsim.Native, khsim.KittenVM, khsim.LinuxVM}
	figure := map[khsim.EvalConfig]string{
		khsim.Native: "Fig 4 (native Kitten)", khsim.KittenVM: "Fig 5 (Kitten scheduler VM)",
		khsim.LinuxVM: "Fig 6 (Linux scheduler VM)",
	}
	for _, cfg := range configs {
		res, err := khsim.RunSelfish(cfg, 42, khsim.Seconds(20))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n  %s\n", figure[cfg], res.Summary())
		h := stats.NewHistogram(0, 50, 10)
		for _, d := range res.Detours {
			h.Observe(d.Duration.Micros())
		}
		for i, b := range h.Buckets {
			bar := strings.Repeat("#", scale(b))
			fmt.Printf("  %5.1f-%5.1fus |%-40s %d\n",
				h.BucketCenter(i)-2.5, h.BucketCenter(i)+2.5, bar, b)
		}
		if h.Overflow > 0 {
			fmt.Printf("  >50us         |%-40s %d\n", strings.Repeat("#", scale(h.Overflow)), h.Overflow)
		}
		fmt.Println()
	}
	fmt.Println("Takeaway: replacing Linux with Kitten as the Hafnium scheduler VM")
	fmt.Println("removes two orders of magnitude of noise events (the paper's §V-a).")
}

func scale(n uint64) int {
	s := 0
	for n > 0 {
		s++
		n /= 2
	}
	if s > 40 {
		s = 40
	}
	return s
}
