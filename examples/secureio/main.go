// Secureio demonstrates the repository's answer to the paper's biggest
// open problem (§VII): I/O between isolated partitions "without imposing
// significant performance overheads". Two secondary VMs communicate
// through a shared-memory message ring (internal/shmring) built from the
// two primitives the architecture already has — an FFA memory grant for
// the data plane and doorbell notifications for signalling — so the
// hypervisor is only involved per-wakeup, never per-byte.
package main

import (
	"fmt"
	"log"

	"khsim"
	"khsim/internal/hafnium"
	"khsim/internal/osapi"
	"khsim/internal/shmring"
	"khsim/internal/sim"
)

const manifest = `
[vm primary]
class = primary
vcpus = 4
memory_mb = 128

[vm sensor]
class = secondary
vcpus = 1
memory_mb = 128

[vm analytics]
class = secondary
vcpus = 1
memory_mb = 256
secure = false
`

func main() {
	node, err := khsim.NewSecureNode(khsim.Options{
		Seed: 21, Manifest: manifest, Scheduler: khsim.SchedulerKitten,
	})
	if err != nil {
		log.Fatal(err)
	}
	h := node.Hyp
	sensor, _ := h.VMByName("sensor")
	analytics, _ := h.VMByName("analytics")

	// The channel: sensor owns the backing pages and shares them to the
	// analytics VM. Isolation holds throughout (checked below).
	base, _ := sensor.RAM()
	ring, err := shmring.Create(h, sensor.ID(), analytics.ID(), base, 16, 8192)
	if err != nil {
		log.Fatal(err)
	}

	// Consumer: wake on doorbell, drain, account.
	var frames, bytesTotal int
	consG := khsim.NewKittenGuest()
	consG.OnNotification = func(vc *hafnium.VCPU) {
		ring.Drain(vc, func(p []byte) {
			frames++
			bytesTotal += len(p)
		}, func(n int) {})
	}
	if err := node.AttachGuest("analytics", consG, 1); err != nil {
		log.Fatal(err)
	}

	// Producer: a sensor streaming 100 telemetry frames of 4 KiB.
	prodG := khsim.NewKittenGuest()
	payload := make([]byte, 4096)
	prodG.Attach(0, osapi.Func{Label: "sensor", Body: func(x osapi.Executor) {
		var push func(i int)
		push = func(i int) {
			if i == 100 {
				x.Done()
				return
			}
			ring.Push(sensor.VCPU(0), payload, true, func(err error) {
				if err != nil {
					x.Exec("backoff", sim.FromMicros(10), func() { push(i) })
					return
				}
				push(i + 1)
			})
		}
		push(0)
	}})
	if err := node.AttachGuest("sensor", prodG, 0); err != nil {
		log.Fatal(err)
	}

	if err := node.Boot(); err != nil {
		log.Fatal(err)
	}
	start := node.Machine.Now()
	node.Run(khsim.Seconds(10))

	if frames != 100 {
		log.Fatalf("received %d/100 frames", frames)
	}
	elapsed := node.Machine.Now().Sub(start)
	st := ring.Stats()
	hst := h.Stats()
	fmt.Printf("transferred %d frames / %d KiB sensor→analytics\n", frames, bytesTotal/1024)
	fmt.Printf("ring: %d pushes, %d pops, %d doorbells, %d full-rejections\n",
		st.Pushed, st.Popped, st.Doorbells, st.FullRejections)
	fmt.Printf("hypervisor involvement: %d notifications, %d world switches total\n",
		hst.Notifications, hst.WorldSwitches)
	fmt.Printf("(data plane is hypervisor-free: no per-byte traps)\n")
	if err := h.VerifyIsolation(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("stage-2 isolation invariant holds throughout ✔")
	// Tear the channel down: the analytics VM loses the mapping.
	if err := ring.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("channel closed after %v; grant reclaimed ✔\n", elapsed)
}
