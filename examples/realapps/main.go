// Realapps runs the actual numeric implementations behind the paper's
// benchmarks — not the calibrated timing models, but the real kernels
// with their own verification: STREAM's analytic check, RandomAccess's
// XOR-involution check, HPCG's residual and exact-solution check, NPB
// EP's published class-S sums and the LU/BT/SP model solvers' analytic
// convergence. This validates that the workloads the simulator schedules
// correspond to real, correct computations.
package main

import (
	"fmt"
	"log"
	"time"

	"khsim/internal/apps/gups"
	"khsim/internal/apps/hpcg"
	"khsim/internal/apps/npb"
	"khsim/internal/apps/stream"
)

func main() {
	// STREAM.
	d := stream.New(1 << 20)
	t0 := time.Now()
	bytes := d.Run(5)
	el := time.Since(t0).Seconds()
	if _, err := d.Verify(5); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("STREAM       %6.1f MB/s (this host), verification ✔\n",
		float64(bytes)/el/1e6)

	// RandomAccess.
	tb, _ := gups.New(20)
	t0 = time.Now()
	n := tb.RunStandard()
	el = time.Since(t0).Seconds()
	if errs := tb.Verify(gups.Starts(0), n); errs != 0 {
		log.Fatalf("GUPS verification: %d errors", errs)
	}
	fmt.Printf("RandomAccess %6.4f GUP/s (this host), 0 verification errors ✔\n",
		gups.GUPS(n, el))

	// HPCG.
	p, err := hpcg.NewProblem(32, 32, 32)
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	res, err := p.Solve(50, 1e-9)
	if err != nil {
		log.Fatal(err)
	}
	el = time.Since(t0).Seconds()
	fmt.Printf("HPCG         %6.3f GFlop/s (this host), %d iters, resid %.2e, ‖x−1‖∞=%.2e ✔\n",
		res.GFLOPs(el), res.Iterations, res.FinalResid/res.InitialResid, res.SolutionError)

	// NPB EP class S with the published reference values.
	t0 = time.Now()
	ep := npb.EP(24)
	el = time.Since(t0).Seconds()
	sxErr, syErr, ok := ep.VerifyClassS()
	if !ok || sxErr > 1e-8 || syErr > 1e-8 {
		log.Fatalf("EP class S verification failed: %v %v %v", sxErr, syErr, ok)
	}
	fmt.Printf("NPB EP.S     %6.2f Mop/s (this host), class-S sums match NPB reference ✔\n",
		ep.Ops/el/1e6)

	// NPB CG.
	m, err := npb.NewCGMatrix(1400, 12, 20)
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	cg := npb.RunCG(m, 20, 15, 25)
	el = time.Since(t0).Seconds()
	fmt.Printf("NPB CG       %6.2f Mop/s (this host), zeta=%.6f, inner resid %.2e ✔\n",
		cg.Ops/el/1e6, cg.Zeta, cg.FinalRNorm)

	// NPB LU / SP / BT model solvers.
	g1, _ := npb.NewGrid3D(24, 24, 24)
	t0 = time.Now()
	lu := npb.LUSSOR(g1, 60, 1.2)
	el = time.Since(t0).Seconds()
	fmt.Printf("NPB LU       %6.2f Mop/s (this host), resid %.2e→%.2e, ‖u−u*‖∞=%.2e ✔\n",
		lu.Ops/el/1e6, lu.InitialResid, lu.FinalResid, g1.SolutionError())

	g2, _ := npb.NewGrid3D(24, 24, 24)
	t0 = time.Now()
	sp := npb.SPADI(g2, 40)
	el = time.Since(t0).Seconds()
	fmt.Printf("NPB SP       %6.2f Mop/s (this host), resid %.2e→%.2e ✔\n",
		sp.Ops/el/1e6, sp.InitialResid, sp.FinalResid)

	st, _ := npb.NewBTState(24, 24, 24, 5)
	t0 = time.Now()
	bt := npb.BTADI(st, 40)
	el = time.Since(t0).Seconds()
	fmt.Printf("NPB BT       %6.2f Mop/s (this host), resid %.2e→%.2e (2-component) ✔\n",
		bt.Ops/el/1e6, bt.InitialResid, bt.FinalResid)
}
