module khsim

go 1.22
